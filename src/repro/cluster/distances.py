"""Distance functions for clustering and nearest-neighbour search.

Each function computes the distances from one query vector to a block of
row vectors, vectorised over the block.  All functions share the signature
``f(block, query) -> distances`` where ``block`` is ``(n, d)`` and
``query`` is ``(d,)``; the result is a float64 vector of length ``n``.

For 0/1 data (the RBAC assignment matrices) Hamming and Manhattan distances
coincide, which is why the paper can use Manhattan in the HNSW baseline and
Hamming in DBSCAN while detecting the same groups.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np
import numpy.typing as npt

from repro.exceptions import ConfigurationError

DistanceFn = Callable[
    [npt.NDArray[np.floating], npt.NDArray[np.floating]],
    npt.NDArray[np.float64],
]


def hamming_distances(
    block: npt.NDArray[np.floating], query: npt.NDArray[np.floating]
) -> npt.NDArray[np.float64]:
    """Number of positions where ``block`` rows differ from ``query``.

    Unlike some libraries this is the *count* of differing positions, not
    the normalised fraction — the paper's similarity threshold is "number
    of distinct users/permissions", which is a count.
    """
    return np.count_nonzero(block != query, axis=1).astype(np.float64)


def manhattan_distances(
    block: npt.NDArray[np.floating], query: npt.NDArray[np.floating]
) -> npt.NDArray[np.float64]:
    """L1 distance; equals Hamming distance on 0/1 vectors."""
    return np.abs(
        np.asarray(block, dtype=np.float64) - np.asarray(query, dtype=np.float64)
    ).sum(axis=1)


def euclidean_distances(
    block: npt.NDArray[np.floating], query: npt.NDArray[np.floating]
) -> npt.NDArray[np.float64]:
    """L2 distance."""
    diff = np.asarray(block, dtype=np.float64) - np.asarray(
        query, dtype=np.float64
    )
    return np.sqrt((diff * diff).sum(axis=1))


def jaccard_distances(
    block: npt.NDArray[np.floating], query: npt.NDArray[np.floating]
) -> npt.NDArray[np.float64]:
    """1 - |A ∩ B| / |A ∪ B| on boolean vectors.

    The distance between two all-zero vectors is defined as 0 (they are
    identical sets).
    """
    block_bool = np.asarray(block, dtype=bool)
    query_bool = np.asarray(query, dtype=bool)
    intersection = np.logical_and(block_bool, query_bool).sum(axis=1)
    union = np.logical_or(block_bool, query_bool).sum(axis=1)
    out = np.ones(len(block_bool), dtype=np.float64)
    nonempty = union > 0
    out[nonempty] = 1.0 - intersection[nonempty] / union[nonempty]
    out[~nonempty] = 0.0
    return out


METRICS: Mapping[str, DistanceFn] = {
    "hamming": hamming_distances,
    "manhattan": manhattan_distances,
    "euclidean": euclidean_distances,
    "jaccard": jaccard_distances,
}


def resolve_metric(metric: str | DistanceFn) -> DistanceFn:
    """Resolve a metric name or callable into a distance function."""
    if callable(metric):
        return metric
    try:
        return METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(METRICS))
        raise ConfigurationError(
            f"unknown metric {metric!r}; expected one of: {known}"
        ) from None
