"""The paper's synthetic assignment-matrix generator (§IV-A).

"…a generator function that creates a matrix resembling RUAM/RPAM with
predefined properties … the number of roles (rows), the number of users
(columns), the proportion of the number of roles in clusters relative to
the total number of roles, and the maximum number of identical roles
within a cluster."

The generator plants clusters of identical rows (``differences = 0``,
the Figure 2/3 workload) or near-identical rows at an exact Hamming
distance from the cluster base (``differences = k``, for evaluating
similarity detection), fills the rest with unique random rows, shuffles,
and returns the matrix together with the ground-truth groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.types import BoolMatrix


@dataclass(frozen=True)
class MatrixSpec:
    """Parameters of the §IV-A generator.

    Parameters
    ----------
    n_roles:
        Number of rows.
    n_cols:
        Number of columns (users or permissions).
    cluster_proportion:
        Fraction of rows that belong to planted clusters (paper: 0.2).
    max_cluster_size:
        Maximum rows per planted cluster (paper: 10); minimum is 2.
    row_density:
        Expected fraction of set bits per random row.  The default keeps
        ~10 set bits per row at 1,000 columns, a realistic role fan-out.
    differences:
        Hamming distance of each planted cluster member from its cluster
        base row: 0 plants identical rows (type-4 workload), ``k >= 1``
        plants rows exactly ``k`` bit-flips away (type-5 workload).
    seed:
        RNG seed; every run with an equal spec is identical.
    """

    n_roles: int
    n_cols: int
    cluster_proportion: float = 0.2
    max_cluster_size: int = 10
    row_density: float = 0.01
    differences: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_roles < 0 or self.n_cols <= 0:
            raise ConfigurationError(
                f"invalid matrix shape ({self.n_roles}, {self.n_cols})"
            )
        if not 0.0 <= self.cluster_proportion <= 1.0:
            raise ConfigurationError(
                f"cluster_proportion must be in [0, 1], "
                f"got {self.cluster_proportion}"
            )
        if self.max_cluster_size < 2:
            raise ConfigurationError(
                f"max_cluster_size must be >= 2, got {self.max_cluster_size}"
            )
        if not 0.0 < self.row_density < 1.0:
            raise ConfigurationError(
                f"row_density must be in (0, 1), got {self.row_density}"
            )
        if self.differences < 0:
            raise ConfigurationError(
                f"differences must be >= 0, got {self.differences}"
            )


@dataclass
class GeneratedMatrix:
    """A generated matrix plus its ground truth.

    ``groups`` holds the planted clusters as lists of row indices (after
    shuffling), members sorted ascending and groups ordered by smallest
    member — the same canonical ordering group finders use.

    Ground-truth guarantees:

    * ``differences = 0`` — the planted groups are *exactly* the groups
      of identical rows: every row is globally unique unless it belongs
      to a planted cluster (enforced by a content registry), so
      ``generated.groups == finder.find_groups(generated.matrix, 0)``.
    * ``differences = k >= 1`` — every planted group is a connected
      component of the "distance <= k" graph by construction (members
      are ``k`` bit-additions from their base, so components form a
      star).  Filler rows are globally unique; accidental near-pairs
      between unrelated random rows have negligible probability at the
      column counts used in the paper's experiments, so in practice the
      found groups equal the planted ones (the tests pin seeds).
    """

    spec: MatrixSpec
    matrix: sp.csr_matrix
    groups: list[list[int]] = field(default_factory=list)

    @property
    def dense(self) -> BoolMatrix:
        """Dense boolean view of the generated matrix."""
        return np.asarray(self.matrix.todense()).astype(bool)

    @property
    def n_clustered_rows(self) -> int:
        return sum(len(group) for group in self.groups)


def generate_matrix(spec: MatrixSpec) -> GeneratedMatrix:
    """Generate a matrix according to ``spec`` (see module docstring)."""
    rng = np.random.default_rng(spec.seed)
    min_bits = max(spec.differences + 1, 2)
    expected_bits = max(min_bits, int(round(spec.row_density * spec.n_cols)))
    if expected_bits + spec.differences >= spec.n_cols:
        raise ConfigurationError(
            "row_density too high for the column count: rows would be full"
        )

    n_clustered_target = int(spec.n_roles * spec.cluster_proportion)
    rows: list[np.ndarray] = []  # sorted column indices per row
    seen: set[bytes] = set()
    cluster_members: list[list[int]] = []

    # --- planted clusters -------------------------------------------------
    while sum(len(c) for c in cluster_members) + 2 <= n_clustered_target:
        remaining = n_clustered_target - sum(len(c) for c in cluster_members)
        size = int(rng.integers(2, min(spec.max_cluster_size, remaining) + 1))
        base = _draw_row(rng, spec.n_cols, expected_bits, seen)
        member_indices = []
        for member in range(size):
            if spec.differences == 0 or member == 0:
                row = base
            else:
                row = _perturb_row(
                    rng, base, spec.n_cols, spec.differences, seen
                )
            member_indices.append(len(rows))
            rows.append(row)
        cluster_members.append(member_indices)

    # --- unique filler rows ------------------------------------------------
    while len(rows) < spec.n_roles:
        rows.append(_draw_row(rng, spec.n_cols, expected_bits, seen))

    # --- shuffle and assemble ----------------------------------------------
    permutation = rng.permutation(spec.n_roles)
    position = np.empty(spec.n_roles, dtype=np.intp)
    position[permutation] = np.arange(spec.n_roles)

    shuffled_rows: list[np.ndarray | None] = [None] * spec.n_roles
    for old_index, row in enumerate(rows):
        shuffled_rows[position[old_index]] = row
    indptr = np.zeros(spec.n_roles + 1, dtype=np.int64)
    for i, row in enumerate(shuffled_rows):
        assert row is not None
        indptr[i + 1] = indptr[i] + len(row)
    if shuffled_rows:
        indices = np.concatenate(shuffled_rows)
    else:
        indices = np.empty(0, dtype=np.int64)
    data = np.ones(len(indices), dtype=np.int64)
    matrix = sp.csr_matrix(
        (data, indices, indptr), shape=(spec.n_roles, spec.n_cols)
    )

    groups = [
        sorted(int(position[m]) for m in members)
        for members in cluster_members
    ]
    groups.sort(key=lambda members: members[0])
    return GeneratedMatrix(spec=spec, matrix=matrix, groups=groups)


def _draw_row(
    rng: np.random.Generator,
    n_cols: int,
    expected_bits: int,
    seen: set[bytes],
    max_attempts: int = 1000,
) -> np.ndarray:
    """Draw a random sorted index row whose content is not in ``seen``."""
    for _attempt in range(max_attempts):
        row = np.sort(
            rng.choice(n_cols, size=expected_bits, replace=False)
        ).astype(np.int64)
        key = row.tobytes()
        if key in seen:
            continue
        seen.add(key)
        return row
    raise ConfigurationError(
        "could not draw a unique random row; lower cluster_proportion or "
        "raise n_cols/row_density"
    )


def _perturb_row(
    rng: np.random.Generator,
    base: np.ndarray,
    n_cols: int,
    differences: int,
    seen: set[bytes],
    max_attempts: int = 1000,
) -> np.ndarray:
    """A row at exactly ``differences`` bit flips from ``base``, unseen.

    Flips are sampled as bit *additions* from outside the base support,
    guaranteeing the exact Hamming distance while keeping all base bits
    (the "roles sharing all but k users" shape from the paper).  Members
    perturbed this way form a star around the base: any two members are
    within ``2 * differences`` of each other and within ``differences``
    of the base, so the cluster is one connected component at threshold
    ``differences``.
    """
    candidates = np.setdiff1d(
        np.arange(n_cols, dtype=np.int64), base, assume_unique=False
    )
    if len(candidates) < differences:
        raise ConfigurationError("not enough free columns to perturb a row")
    for _attempt in range(max_attempts):
        extra = rng.choice(candidates, size=differences, replace=False)
        row = np.sort(np.concatenate([base, extra])).astype(np.int64)
        key = row.tobytes()
        if key in seen:
            continue
        seen.add(key)
        return row
    raise ConfigurationError("could not perturb row to a unique variant")
