"""Hierarchical organisation generator (RBAC1 demo data).

Builds a departmental organisation *with* a role-inheritance DAG and a
verifiable ground truth for the hierarchy-specific inefficiencies:

* per department, a seniority ladder ``lead → senior → member`` where
  each rank adds its own permissions and inherits downward;
* a configurable number of **redundant edges** planted as explicit
  ``lead → member`` shortcuts (already implied transitively);
* a configurable number of **void edges** planted by pointing a lead at
  an empty "placeholder" role that grants nothing;
* a configurable number of **hidden duplicates**: role pairs whose
  direct grants differ but whose *flattened* permission sets coincide —
  invisible to flat analysis, surfaced by
  :func:`repro.hierarchy.flatten`.

Counts are exact by construction and asserted by the test suite, in the
same spirit as :mod:`repro.datagen.orggen`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.entities import Permission, Role, User
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError
from repro.hierarchy import RoleHierarchy


@dataclass(frozen=True)
class HierarchicalOrgProfile:
    """Parameters of the hierarchical generator."""

    n_departments: int = 6
    users_per_department: int = 30
    permissions_per_rank: int = 4
    redundant_edges: int = 2
    void_edges: int = 2
    hidden_duplicate_pairs: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_departments < 1:
            raise ConfigurationError("need at least one department")
        if self.users_per_department < 3:
            raise ConfigurationError("need at least 3 users per department")
        if self.permissions_per_rank < 1:
            raise ConfigurationError("need at least 1 permission per rank")
        for name in ("redundant_edges", "void_edges",
                     "hidden_duplicate_pairs"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
            if getattr(self, name) > self.n_departments:
                raise ConfigurationError(
                    f"{name} cannot exceed n_departments "
                    f"(one planting per department)"
                )


@dataclass
class GeneratedHierarchicalOrg:
    """Generator output with its ground truth."""

    profile: HierarchicalOrgProfile
    state: RbacState
    hierarchy: RoleHierarchy
    planted_redundant_edges: list[tuple[str, str]]
    planted_void_edges: list[tuple[str, str]]
    planted_hidden_duplicates: list[tuple[str, str]]


def generate_hierarchical_org(
    profile: HierarchicalOrgProfile,
) -> GeneratedHierarchicalOrg:
    """Build the organisation described in the module docstring."""
    rng = np.random.default_rng(profile.seed)
    state = RbacState()
    hierarchy = RoleHierarchy()
    redundant: list[tuple[str, str]] = []
    void: list[tuple[str, str]] = []
    hidden: list[tuple[str, str]] = []

    user_counter = 0
    for dept in range(profile.n_departments):
        member_role = f"d{dept:02d}-member"
        senior_role = f"d{dept:02d}-senior"
        lead_role = f"d{dept:02d}-lead"
        for role_id in (member_role, senior_role, lead_role):
            state.add_role(
                Role(role_id, attributes={"department": f"d{dept:02d}"})
            )
        hierarchy.add_inheritance(senior_role, member_role)
        hierarchy.add_inheritance(lead_role, senior_role)

        # Rank-specific permissions.
        rank_permissions: dict[str, list[str]] = {}
        for rank, role_id in (
            ("member", member_role),
            ("senior", senior_role),
            ("lead", lead_role),
        ):
            grants = [
                f"d{dept:02d}-{rank}-p{i}"
                for i in range(profile.permissions_per_rank)
            ]
            for permission_id in grants:
                state.add_permission(Permission(permission_id))
                state.assign_permission(role_id, permission_id)
            rank_permissions[rank] = grants

        # Users split across the three ranks (every rank gets >= 1).
        n = profile.users_per_department
        n_lead = max(1, n // 10)
        n_senior = max(1, n // 3)
        for index in range(n):
            user_id = f"u{user_counter:05d}"
            user_counter += 1
            state.add_user(
                User(user_id, attributes={"department": f"d{dept:02d}"})
            )
            if index < n_lead:
                state.assign_user(lead_role, user_id)
            elif index < n_lead + n_senior:
                state.assign_user(senior_role, user_id)
            else:
                state.assign_user(member_role, user_id)

        # Planted redundant edge: lead -> member (implied via senior).
        if dept < profile.redundant_edges:
            hierarchy.add_inheritance(lead_role, member_role)
            redundant.append((lead_role, member_role))

        # Planted void edge: lead -> empty placeholder role.
        if dept < profile.void_edges:
            placeholder = f"d{dept:02d}-placeholder"
            state.add_role(
                Role(placeholder, attributes={"placeholder": True})
            )
            hierarchy.add_inheritance(lead_role, placeholder)
            void.append((lead_role, placeholder))

        # Planted hidden duplicate: a standalone "shadow-senior" role that
        # directly grants exactly what senior grants *effectively*
        # (member + senior permissions).  Flat permission sets differ
        # (senior's direct set lacks member's), flattened sets coincide.
        if dept < profile.hidden_duplicate_pairs:
            shadow = f"d{dept:02d}-shadow-senior"
            state.add_role(Role(shadow, attributes={"shadow": True}))
            for permission_id in (
                rank_permissions["member"] + rank_permissions["senior"]
            ):
                state.assign_permission(shadow, permission_id)
            shadow_user = f"u{user_counter:05d}"
            user_counter += 1
            state.add_user(User(shadow_user))
            state.assign_user(shadow, shadow_user)
            # a second member so the shadow role is not single-user
            state.assign_user(
                shadow, str(rng.choice(state.user_ids()[:n]))
            )
            hidden.append((senior_role, shadow))

    return GeneratedHierarchicalOrg(
        profile=profile,
        state=state,
        hierarchy=hierarchy,
        planted_redundant_edges=redundant,
        planted_void_edges=void,
        planted_hidden_duplicates=hidden,
    )
