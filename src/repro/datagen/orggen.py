"""Synthetic organisation generator — stand-in for the paper's real dataset.

The paper's §IV-B experiment runs the framework over a proprietary dataset
from an organisation with 60,000+ employees (~90,000 users, ~350,000
permissions, ~50,000 roles) and reports one count per inefficiency type.
The raw data cannot be published, but the reported quantities can be
*planted*: this generator builds a full :class:`~repro.core.state.RbacState`
in which every inefficiency type occurs in an exact, verifiable number —
so the detection framework runs over the same scale and the same code
paths as it would on the real data, and its output can be asserted
against the planted ground truth.

Construction guarantees (verified by the test suite):

* every count in :class:`PlantedCounts` matches the corresponding key of
  :meth:`repro.core.report.Report.counts` exactly;
* no *accidental* inefficiencies: all non-planted role definitions are
  pairwise distinct, multi-member sets have at least 3 elements (so they
  are at Hamming distance >= 2 from every single-member set), sets dealt
  from the shuffled pools are mutually disjoint, and dedicated single
  users/permissions are used exactly once;
* every non-standalone user and permission is assigned somewhere
  (leftover pool entries are folded into normal roles at the end).

Planted duplicate/similar groups are pairs — the conservative reading the
paper itself uses for its "reduce roles by ~10%" estimate ("even if each
cluster contains only two roles").
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.entities import Permission, Role, User
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PlantedCounts:
    """Ground-truth inefficiency counts (keys match ``Report.counts()``).

    Defaults are the paper's reported real-dataset figures.
    """

    standalone_users: int = 500
    standalone_permissions: int = 180_000
    standalone_roles: int = 0
    roles_without_users: int = 12_000
    roles_without_permissions: int = 1_000
    single_user_roles: int = 4_000
    single_permission_roles: int = 21_000
    roles_same_users: int = 8_000
    roles_same_permissions: int = 2_000
    roles_similar_users: int = 6_000
    roles_similar_permissions: int = 4_000

    def scaled(self, divisor: int) -> "PlantedCounts":
        """Divide every count by ``divisor`` (keeping pair counts even)."""
        def scale(value: int, even: bool = False) -> int:
            scaled_value = value // divisor
            if even and scaled_value % 2:
                scaled_value += 1
            return scaled_value

        return PlantedCounts(
            standalone_users=scale(self.standalone_users),
            standalone_permissions=scale(self.standalone_permissions),
            standalone_roles=scale(self.standalone_roles),
            roles_without_users=scale(self.roles_without_users),
            roles_without_permissions=scale(self.roles_without_permissions),
            single_user_roles=scale(self.single_user_roles),
            single_permission_roles=scale(self.single_permission_roles),
            roles_same_users=scale(self.roles_same_users, even=True),
            roles_same_permissions=scale(self.roles_same_permissions, even=True),
            roles_similar_users=scale(self.roles_similar_users, even=True),
            roles_similar_permissions=scale(
                self.roles_similar_permissions, even=True
            ),
        )

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


@dataclass(frozen=True)
class OrgProfile:
    """Full description of a synthetic organisation.

    Parameters
    ----------
    n_users, n_permissions, n_roles:
        Dataset totals.
    planted:
        Exact inefficiency counts to plant.
    user_set_size, permission_set_size:
        Inclusive size range of multi-member sets (minimum allowed is 3;
        see the module docstring for why).
    seed:
        RNG seed; generation is fully deterministic.
    """

    n_users: int
    n_permissions: int
    n_roles: int
    planted: PlantedCounts = PlantedCounts()
    user_set_size: tuple[int, int] = (3, 8)
    permission_set_size: tuple[int, int] = (3, 8)
    seed: int = 0

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "OrgProfile":
        """The §IV-B scale: ~90k users, ~350k permissions, ~50k roles."""
        return cls(
            n_users=90_000,
            n_permissions=350_000,
            n_roles=50_000,
            planted=PlantedCounts(),
            seed=seed,
        )

    @classmethod
    def small(cls, divisor: int = 100, seed: int = 0) -> "OrgProfile":
        """A proportionally scaled-down profile for tests and examples."""
        return cls(
            n_users=90_000 // divisor,
            n_permissions=350_000 // divisor,
            n_roles=50_000 // divisor,
            planted=PlantedCounts().scaled(divisor),
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Derived block sizes
    # ------------------------------------------------------------------
    def block_sizes(self) -> dict[str, int]:
        """How many roles each construction block receives.

        Raises :class:`ConfigurationError` when the planted counts do not
        fit in the profile totals.
        """
        p = self.planted
        for name, value in p.as_dict().items():
            if value < 0:
                raise ConfigurationError(f"planted count {name} is negative")
        for name in (
            "roles_same_users",
            "roles_same_permissions",
            "roles_similar_users",
            "roles_similar_permissions",
        ):
            if getattr(p, name) % 2:
                raise ConfigurationError(
                    f"{name} must be even (groups are planted as pairs)"
                )
        if p.standalone_roles:
            raise ConfigurationError(
                "standalone_roles planting is expressed via n_roles; "
                "set it to 0 and use planting.add_standalone_role instead"
            )

        # Single-permission roles are drawn first from the user-axis group
        # blocks (those roles need *some* permission anyway), then from a
        # dedicated block; symmetrically for single-user roles.
        single_perm_overlap = min(
            p.single_permission_roles, p.roles_same_users + p.roles_similar_users
        )
        extra_single_perm = p.single_permission_roles - single_perm_overlap
        single_user_overlap = min(
            p.single_user_roles,
            p.roles_same_permissions + p.roles_similar_permissions,
        )
        extra_single_user = p.single_user_roles - single_user_overlap

        blocks = {
            "no_users": p.roles_without_users,
            "no_permissions": p.roles_without_permissions,
            "same_users": p.roles_same_users,
            "similar_users": p.roles_similar_users,
            "same_permissions": p.roles_same_permissions,
            "similar_permissions": p.roles_similar_permissions,
            "extra_single_permission": extra_single_perm,
            "extra_single_user": extra_single_user,
        }
        used = sum(blocks.values())
        if used > self.n_roles:
            raise ConfigurationError(
                f"planted roles ({used}) exceed n_roles ({self.n_roles})"
            )
        blocks["normal"] = self.n_roles - used

        if p.standalone_users > self.n_users:
            raise ConfigurationError("standalone_users exceeds n_users")
        if p.standalone_permissions > self.n_permissions:
            raise ConfigurationError(
                "standalone_permissions exceeds n_permissions"
            )
        if self.user_set_size[0] < 3 or self.permission_set_size[0] < 3:
            raise ConfigurationError(
                "multi-member set sizes must be >= 3 to keep them "
                "Hamming-separated from single-member sets"
            )
        if self.user_set_size[0] > self.user_set_size[1]:
            raise ConfigurationError("user_set_size range is inverted")
        if self.permission_set_size[0] > self.permission_set_size[1]:
            raise ConfigurationError("permission_set_size range is inverted")
        return blocks


@dataclass
class GeneratedOrg:
    """A generated organisation with its ground truth."""

    profile: OrgProfile
    state: RbacState
    expected: PlantedCounts

    def expected_counts(self) -> dict[str, int]:
        """Ground truth in the exact shape of ``Report.counts()``."""
        return self.expected.as_dict()


class _Pool:
    """Deals disjoint id sets from a shuffled pool, then unique random sets.

    While the pool lasts, returned sets are mutually disjoint (pairwise
    Hamming distance is the sum of their sizes).  Once exhausted, sets are
    drawn uniformly from the whole id universe, with a content registry
    rejecting exact repeats.  ``leftovers`` exposes ids never dealt, so the
    generator can fold them into existing roles for full coverage.
    """

    def __init__(
        self, ids: list[str], rng: np.random.Generator
    ) -> None:
        self._ids = list(ids)
        rng.shuffle(self._ids)  # type: ignore[arg-type]
        self._cursor = 0
        self._rng = rng
        self._registry: set[frozenset[str]] = set()

    @property
    def universe_size(self) -> int:
        return len(self._ids)

    def register(self, members: frozenset[str]) -> None:
        """Record an externally built set, so future draws avoid it."""
        self._registry.add(members)

    def draw_set(self, size: int, max_attempts: int = 1000) -> frozenset[str]:
        """Deal a set of ``size`` ids (disjoint while the pool lasts)."""
        if size > len(self._ids):
            raise ConfigurationError(
                f"cannot draw a set of {size} from a universe of "
                f"{len(self._ids)}"
            )
        if self._cursor + size <= len(self._ids):
            members = frozenset(self._ids[self._cursor : self._cursor + size])
            self._cursor += size
            self._registry.add(members)
            return members
        for _attempt in range(max_attempts):
            members = frozenset(
                self._rng.choice(
                    self._ids, size=size, replace=False  # type: ignore[arg-type]
                ).tolist()
            )
            if members in self._registry:
                continue
            self._registry.add(members)
            return members
        raise ConfigurationError("id universe too small for unique sets")

    def draw_one(self, max_attempts: int = 1000) -> str:
        """Deal one id to be used as a singleton set.

        While the pool lasts the id is fresh (never dealt before); after
        exhaustion an id is rejection-sampled so that its *singleton set*
        is unique (the id may still appear inside multi-member sets,
        which cannot create duplicate singletons).
        """
        if self._cursor < len(self._ids):
            value = self._ids[self._cursor]
            self._cursor += 1
            self._registry.add(frozenset((value,)))
            return value
        for _attempt in range(max_attempts):
            value = str(self._rng.choice(self._ids))  # type: ignore[arg-type]
            singleton = frozenset((value,))
            if singleton in self._registry:
                continue
            self._registry.add(singleton)
            return value
        raise ConfigurationError("id universe exhausted for singleton sets")

    def extend_with_extra(
        self, members: frozenset[str]
    ) -> frozenset[str]:
        """``members`` plus one fresh id (for distance-1 similar pairs)."""
        if self._cursor < len(self._ids):
            extra = self._ids[self._cursor]
            self._cursor += 1
        else:
            for _attempt in range(1000):
                candidate = str(
                    self._rng.choice(self._ids)  # type: ignore[arg-type]
                )
                if candidate not in members:
                    extra = candidate
                    break
            else:  # pragma: no cover - universe is never that tight
                raise ConfigurationError("cannot find an extra id")
        extended = members | {extra}
        self._registry.add(extended)
        return extended

    def leftovers(self) -> list[str]:
        """Ids never dealt (still needing coverage)."""
        return self._ids[self._cursor :]


def generate_org(profile: OrgProfile) -> GeneratedOrg:
    """Generate a full organisation according to ``profile``."""
    blocks = profile.block_sizes()
    planted = profile.planted
    rng = np.random.default_rng(profile.seed)

    user_width = max(5, len(str(profile.n_users)))
    role_width = max(5, len(str(profile.n_roles)))
    permission_width = max(6, len(str(profile.n_permissions)))
    user_ids = [f"u{i:0{user_width}d}" for i in range(profile.n_users)]
    role_ids = [f"r{i:0{role_width}d}" for i in range(profile.n_roles)]
    permission_ids = [
        f"p{i:0{permission_width}d}" for i in range(profile.n_permissions)
    ]

    # Standalone entities: reserved, never assigned.
    usable_users = user_ids[: profile.n_users - planted.standalone_users]
    usable_permissions = permission_ids[
        : profile.n_permissions - planted.standalone_permissions
    ]
    if not usable_users or not usable_permissions:
        raise ConfigurationError(
            "profile leaves no usable users or permissions"
        )

    user_pool = _Pool(usable_users, rng)
    permission_pool = _Pool(usable_permissions, rng)

    def user_set_size() -> int:
        low, high = profile.user_set_size
        return int(rng.integers(low, high + 1))

    def permission_set_size() -> int:
        low, high = profile.permission_set_size
        return int(rng.integers(low, high + 1))

    # role_id -> (user set, permission set, category)
    role_users: dict[str, frozenset[str]] = {}
    role_permissions: dict[str, frozenset[str]] = {}
    role_category: dict[str, str] = {}

    role_cursor = 0

    def next_role(category: str) -> str:
        nonlocal role_cursor
        role_id = role_ids[role_cursor]
        role_cursor += 1
        role_category[role_id] = category
        return role_id

    # Quotas of single-member sets still to hand out on each axis.
    single_perm_quota = planted.single_permission_roles
    single_user_quota = planted.single_user_roles

    def perm_side_for_group_role() -> frozenset[str]:
        """Permission set for a user-axis group member (single if quota)."""
        nonlocal single_perm_quota
        if single_perm_quota > 0:
            single_perm_quota -= 1
            return frozenset((permission_pool.draw_one(),))
        return permission_pool.draw_set(permission_set_size())

    def user_side_for_group_role() -> frozenset[str]:
        """User set for a permission-axis group member (single if quota)."""
        nonlocal single_user_quota
        if single_user_quota > 0:
            single_user_quota -= 1
            return frozenset((user_pool.draw_one(),))
        return user_pool.draw_set(user_set_size())

    # --- block 1: roles with permissions but no users ----------------------
    for _ in range(blocks["no_users"]):
        role_id = next_role("no_users")
        role_users[role_id] = frozenset()
        role_permissions[role_id] = permission_pool.draw_set(
            permission_set_size()
        )

    # --- block 2: roles with users but no permissions ----------------------
    for _ in range(blocks["no_permissions"]):
        role_id = next_role("no_permissions")
        role_users[role_id] = user_pool.draw_set(user_set_size())
        role_permissions[role_id] = frozenset()

    # --- block 3: pairs sharing the same user set ---------------------------
    for _pair in range(blocks["same_users"] // 2):
        shared_users = user_pool.draw_set(user_set_size())
        for _member in range(2):
            role_id = next_role("same_users")
            role_users[role_id] = shared_users
            role_permissions[role_id] = perm_side_for_group_role()

    # --- block 4: pairs with user sets at Hamming distance 1 ---------------
    for _pair in range(blocks["similar_users"] // 2):
        base_users = user_pool.draw_set(user_set_size())
        extended_users = user_pool.extend_with_extra(base_users)
        for members in (base_users, extended_users):
            role_id = next_role("similar_users")
            role_users[role_id] = members
            role_permissions[role_id] = perm_side_for_group_role()

    # --- block 5: pairs sharing the same permission set ---------------------
    for _pair in range(blocks["same_permissions"] // 2):
        shared_permissions = permission_pool.draw_set(permission_set_size())
        for _member in range(2):
            role_id = next_role("same_permissions")
            role_permissions[role_id] = shared_permissions
            role_users[role_id] = user_side_for_group_role()

    # --- block 6: pairs with permission sets at Hamming distance 1 ---------
    for _pair in range(blocks["similar_permissions"] // 2):
        base_permissions = permission_pool.draw_set(permission_set_size())
        extended_permissions = permission_pool.extend_with_extra(
            base_permissions
        )
        for grants in (base_permissions, extended_permissions):
            role_id = next_role("similar_permissions")
            role_permissions[role_id] = grants
            role_users[role_id] = user_side_for_group_role()

    # --- block 7: dedicated single-permission roles -------------------------
    for _ in range(blocks["extra_single_permission"]):
        role_id = next_role("single_permission")
        role_users[role_id] = user_pool.draw_set(user_set_size())
        role_permissions[role_id] = frozenset((permission_pool.draw_one(),))
        single_perm_quota -= 1

    # --- block 8: dedicated single-user roles --------------------------------
    for _ in range(blocks["extra_single_user"]):
        role_id = next_role("single_user")
        role_users[role_id] = frozenset((user_pool.draw_one(),))
        role_permissions[role_id] = permission_pool.draw_set(
            permission_set_size()
        )
        single_user_quota -= 1

    # --- block 9: normal (efficient) roles ----------------------------------
    normal_role_ids = []
    for _ in range(blocks["normal"]):
        role_id = next_role("normal")
        normal_role_ids.append(role_id)
        role_users[role_id] = user_pool.draw_set(user_set_size())
        role_permissions[role_id] = permission_pool.draw_set(
            permission_set_size()
        )

    # --- coverage: fold leftover pool ids into normal roles ------------------
    _fold_leftovers(user_pool.leftovers(), normal_role_ids, role_users, "users")
    _fold_leftovers(
        permission_pool.leftovers(),
        normal_role_ids,
        role_permissions,
        "permissions",
    )

    # --- assemble the state ---------------------------------------------------
    state = RbacState()
    for user_id in user_ids:
        state.add_user(User(user_id))
    for permission_id in permission_ids:
        state.add_permission(Permission(permission_id))
    for role_id in role_ids:
        state.add_role(
            Role(role_id, attributes={"category": role_category[role_id]})
        )
    for role_id in role_ids:
        for user_id in role_users[role_id]:
            state.assign_user(role_id, user_id)
        for permission_id in role_permissions[role_id]:
            state.assign_permission(role_id, permission_id)

    return GeneratedOrg(profile=profile, state=state, expected=planted)


def _fold_leftovers(
    leftovers: list[str],
    normal_role_ids: list[str],
    assignment: dict[str, frozenset[str]],
    noun: str,
) -> None:
    """Distribute never-dealt ids over normal roles for full coverage.

    Adding previously-unused ids to mutually-disjoint normal sets keeps
    them disjoint, so no new duplicate or similar pairs can appear.
    """
    if not leftovers:
        return
    if not normal_role_ids:
        raise ConfigurationError(
            f"{len(leftovers)} {noun} left unassigned but the profile has "
            "no normal roles to absorb them; raise n_roles or lower totals"
        )
    chunk = -(-len(leftovers) // len(normal_role_ids))  # ceil division
    cursor = 0
    for role_id in normal_role_ids:
        if cursor >= len(leftovers):
            break
        extra = leftovers[cursor : cursor + chunk]
        cursor += len(extra)
        assignment[role_id] = assignment[role_id] | set(extra)
