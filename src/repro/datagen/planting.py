"""Surgical inefficiency injection into an existing RBAC state.

Each helper plants exactly one inefficiency instance and returns the ids
it created, so tests and demos can assert that the detectors find
precisely what was planted.  All helpers mutate the state in place.
"""

from __future__ import annotations

from itertools import count

from repro.core.entities import Permission, Role, User
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError


def _fresh_id(state: RbacState, prefix: str, exists) -> str:
    """First ``{prefix}{n}`` id not present in the state."""
    for n in count():
        candidate = f"{prefix}{n}"
        if not exists(candidate):
            return candidate
    raise AssertionError("unreachable")  # pragma: no cover


def add_standalone_user(state: RbacState, user_id: str | None = None) -> str:
    """Add a user with no role assignments (a type-1 finding)."""
    user_id = user_id or _fresh_id(state, "standalone-user-", state.has_user)
    state.add_user(User(user_id))
    return user_id


def add_standalone_permission(
    state: RbacState, permission_id: str | None = None
) -> str:
    """Add a permission linked to no role (a type-1 finding)."""
    permission_id = permission_id or _fresh_id(
        state, "standalone-permission-", state.has_permission
    )
    state.add_permission(Permission(permission_id))
    return permission_id


def add_standalone_role(state: RbacState, role_id: str | None = None) -> str:
    """Add a role with neither users nor permissions (a type-1 finding)."""
    role_id = role_id or _fresh_id(state, "standalone-role-", state.has_role)
    state.add_role(Role(role_id))
    return role_id


def add_single_assignment_role(
    state: RbacState,
    user_id: str,
    permission_ids: tuple[str, ...] = (),
    role_id: str | None = None,
) -> str:
    """Add a role assigned to exactly one user (a type-3 finding).

    ``permission_ids`` (optional, must already exist) keeps the role off
    the type-2 list when non-empty.
    """
    role_id = role_id or _fresh_id(state, "single-user-role-", state.has_role)
    state.add_role(Role(role_id))
    state.assign_user(role_id, user_id)
    for permission_id in permission_ids:
        state.assign_permission(role_id, permission_id)
    return role_id


def add_role_twin(
    state: RbacState, role_id: str, twin_id: str | None = None
) -> str:
    """Clone a role's user *and* permission assignments (type-4 on both
    axes).  Returns the new role id."""
    users = state.users_of_role(role_id)
    permissions = state.permissions_of_role(role_id)
    twin_id = twin_id or _fresh_id(state, f"{role_id}-twin-", state.has_role)
    state.add_role(Role(twin_id))
    for user_id in users:
        state.assign_user(twin_id, user_id)
    for permission_id in permissions:
        state.assign_permission(twin_id, permission_id)
    return twin_id


def add_similar_role(
    state: RbacState,
    role_id: str,
    extra_user_ids: tuple[str, ...] = (),
    extra_permission_ids: tuple[str, ...] = (),
    similar_id: str | None = None,
) -> str:
    """Clone a role and extend one side by the given extra ids (type-5).

    Exactly one of ``extra_user_ids`` / ``extra_permission_ids`` should be
    non-empty; its length is the Hamming distance to the original role on
    that axis.
    """
    if bool(extra_user_ids) == bool(extra_permission_ids):
        raise ConfigurationError(
            "provide extra ids on exactly one axis (users or permissions)"
        )
    similar_id = add_role_twin(
        state,
        role_id,
        twin_id=similar_id
        or _fresh_id(state, f"{role_id}-similar-", state.has_role),
    )
    for user_id in extra_user_ids:
        state.assign_user(similar_id, user_id)
    for permission_id in extra_permission_ids:
        state.assign_permission(similar_id, permission_id)
    return similar_id
