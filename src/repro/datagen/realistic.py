"""Department-shaped organisation generator.

The §IV-B generator (:mod:`repro.datagen.orggen`) plants exact counts;
this one instead aims for *structural* realism for demos and examples:

* departments with skewed (Zipf-like) head counts, as in real orgs;
* per-department roles drawn from department-local permission namespaces;
* a handful of company-wide baseline roles everybody holds;
* organic inefficiency: a configurable fraction of roles are "drifted
  copies" of existing roles — the fragmented-ownership duplication the
  paper attributes to siloed departments — plus some forgotten users,
  decommissioned permissions, and stale roles.

No exact ground-truth counts are returned (real data does not come with
any); run the analysis engine to discover what the drift produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.entities import Permission, Role, User
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DepartmentProfile:
    """Parameters of the departmental generator.

    Parameters
    ----------
    n_departments:
        Number of departments.
    n_users:
        Total head count, split across departments by a Zipf-like law.
    roles_per_department:
        Inclusive range of per-department role counts.
    permissions_per_department:
        Inclusive range of department-local permission counts.
    n_baseline_roles:
        Company-wide roles every user is assigned (badge access, email…).
    duplication_rate:
        Fraction of department roles that get a "drifted copy": an exact
        clone with probability 1/2, otherwise a near-clone with one extra
        permission.
    stale_user_rate, stale_permission_rate:
        Fractions of users/permissions left completely unassigned.
    seed:
        RNG seed.
    """

    n_departments: int = 12
    n_users: int = 1200
    roles_per_department: tuple[int, int] = (4, 12)
    permissions_per_department: tuple[int, int] = (15, 40)
    n_baseline_roles: int = 3
    duplication_rate: float = 0.15
    stale_user_rate: float = 0.01
    stale_permission_rate: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_departments < 1 or self.n_users < self.n_departments:
            raise ConfigurationError(
                "need at least one department and one user per department"
            )
        if not 0.0 <= self.duplication_rate <= 1.0:
            raise ConfigurationError("duplication_rate must be in [0, 1]")
        for rate in (self.stale_user_rate, self.stale_permission_rate):
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError("stale rates must be in [0, 1)")


def generate_departmental_org(profile: DepartmentProfile) -> RbacState:
    """Build a department-structured :class:`RbacState` (see module doc)."""
    rng = np.random.default_rng(profile.seed)
    state = RbacState()

    # --- users, split across departments by a Zipf-ish distribution --------
    weights = 1.0 / np.arange(1, profile.n_departments + 1, dtype=np.float64)
    weights /= weights.sum()
    n_stale_users = int(profile.n_users * profile.stale_user_rate)
    active_users = profile.n_users - n_stale_users
    department_sizes = rng.multinomial(active_users, weights)
    # Every department keeps at least one member.
    for dept in range(profile.n_departments):
        if department_sizes[dept] == 0:
            donor = int(np.argmax(department_sizes))
            department_sizes[donor] -= 1
            department_sizes[dept] += 1

    department_users: list[list[str]] = []
    user_counter = 0
    for dept, size in enumerate(department_sizes):
        members = []
        for _ in range(int(size)):
            user_id = f"user-{user_counter:05d}"
            state.add_user(
                User(user_id, attributes={"department": f"dept-{dept:02d}"})
            )
            members.append(user_id)
            user_counter += 1
        department_users.append(members)
    for _ in range(n_stale_users):
        state.add_user(
            User(f"user-{user_counter:05d}", attributes={"stale": True})
        )
        user_counter += 1

    # --- permissions: shared + per-department namespaces --------------------
    shared_permissions = [f"perm-shared-{i:03d}" for i in range(20)]
    for permission_id in shared_permissions:
        state.add_permission(Permission(permission_id))
    department_permissions: list[list[str]] = []
    for dept in range(profile.n_departments):
        low, high = profile.permissions_per_department
        n_perms = int(rng.integers(low, high + 1))
        namespace = []
        for i in range(n_perms):
            permission_id = f"perm-d{dept:02d}-{i:03d}"
            state.add_permission(
                Permission(
                    permission_id,
                    attributes={"department": f"dept-{dept:02d}"},
                )
            )
            namespace.append(permission_id)
        department_permissions.append(namespace)

    # --- baseline roles everyone holds --------------------------------------
    all_active_users = [u for members in department_users for u in members]
    for i in range(profile.n_baseline_roles):
        role_id = f"role-baseline-{i:02d}"
        state.add_role(Role(role_id, attributes={"baseline": True}))
        grants = rng.choice(
            shared_permissions,
            size=min(4, len(shared_permissions)),
            replace=False,
        )
        for permission_id in grants:
            state.assign_permission(role_id, str(permission_id))
        for user_id in all_active_users:
            state.assign_user(role_id, user_id)

    # --- department roles (with drifted copies) -----------------------------
    role_counter = 0
    for dept in range(profile.n_departments):
        members = department_users[dept]
        namespace = department_permissions[dept]
        low, high = profile.roles_per_department
        n_roles = int(rng.integers(low, high + 1))
        department_role_ids = []
        for _ in range(n_roles):
            role_id = f"role-{role_counter:04d}"
            role_counter += 1
            state.add_role(
                Role(role_id, attributes={"department": f"dept-{dept:02d}"})
            )
            department_role_ids.append(role_id)
            n_members = int(rng.integers(1, max(2, len(members) // 2) + 1))
            for user_id in rng.choice(
                members, size=min(n_members, len(members)), replace=False
            ):
                state.assign_user(role_id, str(user_id))
            n_grants = int(rng.integers(1, min(8, len(namespace)) + 1))
            for permission_id in rng.choice(
                namespace, size=n_grants, replace=False
            ):
                state.assign_permission(role_id, str(permission_id))

        # Drifted copies: the siloed-ownership duplication of the paper.
        n_copies = int(round(len(department_role_ids) * profile.duplication_rate))
        for original in rng.choice(
            department_role_ids,
            size=min(n_copies, len(department_role_ids)),
            replace=False,
        ):
            role_id = f"role-{role_counter:04d}"
            role_counter += 1
            state.add_role(
                Role(
                    role_id,
                    attributes={
                        "department": f"dept-{dept:02d}",
                        "copy_of": str(original),
                    },
                )
            )
            for user_id in state.users_of_role(str(original)):
                state.assign_user(role_id, user_id)
            for permission_id in state.permissions_of_role(str(original)):
                state.assign_permission(role_id, permission_id)
            if rng.random() < 0.5:
                unused = [
                    p
                    for p in namespace
                    if p not in state.permissions_of_role(role_id)
                ]
                if unused:
                    state.assign_permission(
                        role_id, str(rng.choice(unused))
                    )

    # --- stale permissions (never assigned) ----------------------------------
    n_stale_permissions = int(
        state.n_permissions
        * profile.stale_permission_rate
        / max(1e-9, 1.0 - profile.stale_permission_rate)
    )
    for i in range(n_stale_permissions):
        state.add_permission(
            Permission(f"perm-stale-{i:04d}", attributes={"stale": True})
        )

    return state
