"""Synthetic RBAC data generators.

Three generators at increasing levels of structure:

* :mod:`~repro.datagen.matrixgen` — the paper's §IV-A generator: a bare
  RUAM/RPAM-like boolean matrix with a controlled fraction of rows placed
  in identical (or near-identical) clusters; used by the Figure 2/3
  timing experiments, with ground-truth groups returned for recall
  checks.
* :mod:`~repro.datagen.orggen` — the §IV-B stand-in for the proprietary
  real-organisation dataset: a full :class:`~repro.core.state.RbacState`
  with every inefficiency type *planted in exact, verifiable quantities*.
* :mod:`~repro.datagen.realistic` — a department-shaped organisation
  generator (skewed department sizes, shared baseline roles) used by the
  examples; structurally plausible rather than count-exact.

:mod:`~repro.datagen.planting` offers surgical helpers to inject a single
inefficiency into an existing state (used heavily by the test suite).
"""

from repro.datagen.matrixgen import GeneratedMatrix, MatrixSpec, generate_matrix
from repro.datagen.orggen import (
    GeneratedOrg,
    OrgProfile,
    PlantedCounts,
    generate_org,
)
from repro.datagen.planting import (
    add_role_twin,
    add_similar_role,
    add_single_assignment_role,
    add_standalone_permission,
    add_standalone_role,
    add_standalone_user,
)
from repro.datagen.hierarchygen import (
    GeneratedHierarchicalOrg,
    HierarchicalOrgProfile,
    generate_hierarchical_org,
)
from repro.datagen.realistic import DepartmentProfile, generate_departmental_org

__all__ = [
    "GeneratedMatrix",
    "MatrixSpec",
    "generate_matrix",
    "GeneratedOrg",
    "OrgProfile",
    "PlantedCounts",
    "generate_org",
    "DepartmentProfile",
    "GeneratedHierarchicalOrg",
    "HierarchicalOrgProfile",
    "generate_hierarchical_org",
    "generate_departmental_org",
    "add_role_twin",
    "add_similar_role",
    "add_single_assignment_role",
    "add_standalone_permission",
    "add_standalone_role",
    "add_standalone_user",
]
