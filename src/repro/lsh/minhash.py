"""MinHash signatures for sparse boolean rows.

A MinHash signature approximates Jaccard similarity: for a random hash
function ``h``, ``P[min h(A) = min h(B)] = J(A, B)``.  Stacking ``n``
independent hashes gives a fixed-size sketch whose agreement rate
estimates the similarity — and, crucially for grouping, *identical sets
always produce identical signatures*.

Hashes are the classic universal family ``h(x) = (a·x + b) mod p`` with
``p = 2^31 - 1`` (Mersenne).  With ``a, b, x < p`` every product fits a
``uint64``, so the whole computation stays in vectorised numpy.  The
grouping layer verifies every candidate pair exactly, so hash-collision
quality only affects speed, never correctness.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
import scipy.sparse as sp

from repro.bitmatrix import to_csr
from repro.exceptions import ConfigurationError

#: Mersenne prime 2^31 - 1: products of two < p values fit in uint64.
_PRIME = np.uint64((1 << 31) - 1)

#: Sentinel signature value for empty rows (no elements to hash).  All
#: empty rows share it, matching "identical sets → identical signature".
EMPTY_ROW_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)


def minhash_signatures(
    matrix: npt.ArrayLike | sp.spmatrix,
    n_hashes: int = 64,
    seed: int = 0,
) -> npt.NDArray[np.uint64]:
    """Per-row MinHash signatures of a boolean matrix.

    Returns an ``(n_rows, n_hashes)`` ``uint64`` array.  Deterministic
    per (content, n_hashes, seed); row order follows the input.
    """
    if n_hashes < 1:
        raise ConfigurationError(f"n_hashes must be >= 1, got {n_hashes}")
    csr = to_csr(matrix)
    rng = np.random.default_rng(seed)
    # a must be non-zero for universality.
    a = rng.integers(1, int(_PRIME), size=n_hashes, dtype=np.uint64)
    b = rng.integers(0, int(_PRIME), size=n_hashes, dtype=np.uint64)
    a_col = a[:, None]
    b_col = b[:, None]

    n_rows = csr.shape[0]
    signatures = np.empty((n_rows, n_hashes), dtype=np.uint64)
    indptr = csr.indptr
    indices = (csr.indices.astype(np.uint64)) % _PRIME
    # Python-level loop over rows; each row is fully vectorised
    # (n_hashes x row_size hash evaluations in one numpy expression).
    for row in range(n_rows):
        elements = indices[indptr[row] : indptr[row + 1]]
        if len(elements) == 0:
            signatures[row, :] = EMPTY_ROW_SENTINEL
            continue
        hashed = (a_col * elements[None, :] + b_col) % _PRIME
        signatures[row, :] = hashed.min(axis=1)
    return signatures


def estimate_jaccard(
    signature_a: npt.NDArray[np.uint64],
    signature_b: npt.NDArray[np.uint64],
) -> float:
    """Estimated Jaccard similarity: the sketch agreement rate."""
    if signature_a.shape != signature_b.shape:
        raise ConfigurationError("signatures must have equal length")
    if len(signature_a) == 0:
        raise ConfigurationError("signatures must be non-empty")
    return float(np.count_nonzero(signature_a == signature_b)) / len(
        signature_a
    )
