"""From-scratch MinHash + banded LSH substrate.

The paper's approximate baseline uses the ``datasketch`` library's HNSW
index; ``datasketch``'s flagship structure, however, is **MinHash LSH**
(Broder 1997; Indyk & Motwani 1998) — the classic way to find
near-duplicate *sets* at scale, which is precisely the shape of RBAC
role rows.  This package implements it from scratch as an additional
approximate grouping backend:

* :mod:`~repro.lsh.minhash` — vectorised universal-hash MinHash
  signatures over sparse set rows;
* :mod:`~repro.lsh.index` — banded LSH index yielding candidate pairs;
* the ``"lsh"`` group finder (:class:`~repro.lsh.finder.LshGroupFinder`)
  registered alongside the paper's three methods.

Semantics: every candidate pair is **verified exactly** before being
grouped, so the finder is sound like the others; for ``k = 0`` it is
also complete (identical rows have identical signatures and always
collide), while for ``k ≥ 1`` recall depends on the Jaccard similarity
the band/row configuration targets — the same speed/recall dial the
paper's HNSW baseline exposes through ``ef``.
"""

from repro.lsh.minhash import minhash_signatures
from repro.lsh.index import LshIndex
from repro.lsh.finder import LshGroupFinder

__all__ = ["minhash_signatures", "LshIndex", "LshGroupFinder"]
