"""The ``"lsh"`` group finder: MinHash LSH candidates, exact verification.

A second approximate baseline next to the paper's HNSW one.  Candidate
pairs come from banded MinHash collisions; each candidate is then
verified against the *exact* Hamming criterion before union-find, so the
finder is sound by construction:

* ``k = 0`` — identical rows have identical signatures, which collide in
  every band, so the finder is also **complete** (exact duplicates are
  never missed);
* ``k ≥ 1`` — a near-duplicate pair collides with the LSH S-curve
  probability at its Jaccard similarity; big overlapping sets (the RBAC
  type-5 shape) sit far up the curve, tiny sets may be missed.  The
  zero-overlap small-set case is handled by the same anchor pass the
  custom algorithm uses, keeping parity on degenerate inputs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bitmatrix import row_norms
from repro.core.grouping.base import GroupFinder, register_group_finder
from repro.core.grouping.cooccurrence import CooccurrenceGroupFinder
from repro.lsh.index import LshIndex
from repro.lsh.minhash import minhash_signatures
from repro.util import DisjointSet


@register_group_finder("lsh")
class LshGroupFinder(GroupFinder):
    """Approximate group finder backed by MinHash LSH.

    Parameters
    ----------
    n_hashes:
        Signature length (more hashes → better similarity resolution).
    n_bands:
        LSH bands; must divide ``n_hashes``.  More bands move the
        S-curve left (higher recall, more candidate noise).
    seed:
        Hash-family seed (fixes signatures for reproducibility).
    """

    def __init__(
        self, n_hashes: int = 64, n_bands: int = 16, seed: int = 0
    ) -> None:
        self._n_hashes = n_hashes
        self._n_bands = n_bands
        self._seed = seed

    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        k = self._check_threshold(max_differences)
        csr = self._csr_of(matrix)
        csr = csr.copy()
        csr.sort_indices()
        n_rows = csr.shape[0]
        if n_rows == 0:
            return []
        signatures = minhash_signatures(
            csr, n_hashes=self._n_hashes, seed=self._seed
        )
        return self._group_candidates(csr, signatures, row_norms(csr), k)

    def find_groups_in(
        self, view: Any, max_differences: int = 0
    ) -> list[list[int]]:
        """Group via the view's memoised signatures and norms.

        The signature artifact is keyed by ``(n_hashes, seed)``, so two
        LSH finders with equal parameters share one hashing pass; exact
        verification reads the shared CSR artifact.
        """
        k = self._check_threshold(max_differences)
        if view.n_rows == 0:
            return []
        signatures = view.signatures(self._n_hashes, self._seed)
        return self._group_candidates(view.csr, signatures, view.norms, k)

    def warm(self, view: Any, max_differences: int = 0) -> None:
        """Materialise the signature and CSR artifacts used above."""
        if max_differences < 0 or view.n_rows == 0:
            return
        view.signatures(self._n_hashes, self._seed)
        view.csr

    def _group_candidates(
        self, csr: Any, signatures: Any, norms: Any, k: int
    ) -> list[list[int]]:
        n_rows = csr.shape[0]
        index = LshIndex(signatures, n_bands=self._n_bands)
        indptr = csr.indptr
        indices = csr.indices

        def row_set(row: int) -> set[int]:
            return set(indices[indptr[row] : indptr[row + 1]].tolist())

        components = DisjointSet(n_rows)
        for i, j in index.candidate_pairs():
            # cheap norm bound first, then exact verification
            if abs(int(norms[i]) - int(norms[j])) > k:
                continue
            distance = len(row_set(i).symmetric_difference(row_set(j)))
            if distance <= k:
                components.union(i, j)

        # Zero-overlap small sets never collide in LSH; same anchor pass
        # as the custom algorithm keeps degenerate inputs correct.
        CooccurrenceGroupFinder._union_non_overlapping(
            components, np.asarray(norms), k
        )
        return components.groups(min_size=2)
