"""Banded LSH index over MinHash signatures.

Signatures are split into ``n_bands`` bands of ``rows_per_band`` hash
values; two rows become a *candidate pair* when any band matches
exactly.  For Jaccard similarity ``s`` the collision probability is
``1 - (1 - s^r)^b`` — the classic S-curve whose knee the (b, r) choice
places; the defaults (16 bands × 4 rows) put it around ``s ≈ 0.5``,
which comfortably catches the near-duplicate role rows the paper's
type-4/5 detectors target while keeping candidate noise low.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
import numpy.typing as npt

from repro.exceptions import ConfigurationError


class LshIndex:
    """Buckets signature bands; yields candidate row pairs.

    Parameters
    ----------
    signatures:
        ``(n_rows, n_hashes)`` MinHash signature array.
    n_bands:
        Number of bands; must divide the signature length.
    """

    def __init__(
        self,
        signatures: npt.NDArray[np.uint64],
        n_bands: int = 16,
    ) -> None:
        if signatures.ndim != 2:
            raise ConfigurationError("signatures must be a 2-D array")
        n_rows, n_hashes = signatures.shape
        if n_bands < 1 or n_hashes % n_bands != 0:
            raise ConfigurationError(
                f"n_bands={n_bands} must divide the signature "
                f"length {n_hashes}"
            )
        self.n_bands = n_bands
        self.rows_per_band = n_hashes // n_bands
        self._n_rows = n_rows
        # band -> {band-content bytes -> [row, ...]}
        self._buckets: list[dict[bytes, list[int]]] = [
            {} for _ in range(n_bands)
        ]
        self._signatures = np.ascontiguousarray(signatures)
        for row in range(n_rows):
            for band in range(n_bands):
                key = self._band_key(row, band)
                self._buckets[band].setdefault(key, []).append(row)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def candidate_pairs(self) -> Iterator[tuple[int, int]]:
        """Distinct row pairs sharing at least one band bucket.

        Pairs are emitted with ``i < j``, each at most once, in
        deterministic order.
        """
        seen: set[tuple[int, int]] = set()
        for band_buckets in self._buckets:
            for members in band_buckets.values():
                if len(members) < 2:
                    continue
                for position, i in enumerate(members):
                    for j in members[position + 1 :]:
                        pair = (i, j) if i < j else (j, i)
                        if pair not in seen:
                            seen.add(pair)
                            yield pair

    def candidates_of(self, row: int) -> list[int]:
        """Rows sharing at least one band with ``row`` (itself excluded)."""
        if not 0 <= row < self._n_rows:
            raise ConfigurationError(f"row {row} out of range")
        found: set[int] = set()
        for band in range(self.n_bands):
            members = self._buckets[band].get(self._band_key(row, band), ())
            found.update(members)
        found.discard(row)
        return sorted(found)

    def _band_key(self, row: int, band: int) -> bytes:
        start = band * self.rows_per_band
        return self._signatures[
            row, start : start + self.rows_per_band
        ].tobytes()
