"""``repro`` command-line interface.

Subcommands
-----------
``analyze``
    Load an RBAC dataset (JSON or CSV directory), run the detector
    suite, print the report (text / markdown / json).
``generate``
    Produce a synthetic dataset: the planted organisation (``org``) or
    the departmental demo org (``departmental``).
``plan``
    Build a remediation plan from a dataset and print it (optionally
    write the consolidated dataset back out).
``diff``
    Analyse two datasets and print the finding delta (new / resolved /
    count changes) — the periodic-run review view.
``anonymize``
    Keyed pseudonymisation: structure (and findings) preserved exactly,
    identities unlinkable without the key.
``render``
    Graphviz DOT export of the tripartite graph, Figure-1 style, with
    detected inefficiencies highlighted.
``stats``
    Dataset shape statistics (degree distributions, densities, Gini).
``usage``
    Dormancy analysis joining the dataset with an access-log CSV.
``bench``
    Run a paper experiment (``fig2``, ``fig3``, ``real``) or the
    ``density`` ablation and print the series/table.
``serve``
    Run the long-running analysis service: an HTTP/JSON daemon with
    mutation ingestion, report caching, backpressure, and graceful
    drain (see docs/ARCHITECTURE.md).  With ``--execution queue`` the
    daemon enqueues analyses onto a durable job plane instead of
    computing them in-process.
``work``
    Attach N worker processes to a shared job-queue file (the consumer
    side of ``serve --execution queue``); workers claim leased jobs,
    heartbeat, and survive SIGTERM by finishing or releasing cleanly.
``trace``
    Analyse JSONL trace files written by ``--trace-out``: ``summarize``
    (span trees, critical path, slowest spans), ``flame`` (collapsed
    stacks for flamegraph.pl / speedscope), ``diff`` (per-span-name
    delta between two runs).

Run ``repro <subcommand> --help`` for the full flag list.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.core.engine import AnalysisConfig, analyze
from repro.core.state import RbacState
from repro.exceptions import ReproError
from repro.io import load_csv, load_json, save_csv, save_json


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # Conventional 128+SIGINT so long analyze/bench/serve runs die
        # quietly on Ctrl-C instead of dumping a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Reader went away (e.g. `repro analyze ... | head`).  Point
        # stdout at /dev/null so the interpreter's shutdown flush does
        # not raise a second time, and exit as a successful pipeline
        # participant.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IAM Role Diet: detect RBAC data inefficiencies",
    )
    parser.set_defaults(command=None)
    sub = parser.add_subparsers(dest="command")

    analyze_parser = sub.add_parser(
        "analyze", help="analyse a dataset and print the findings report"
    )
    analyze_parser.add_argument("dataset", help="JSON file or CSV directory")
    analyze_parser.add_argument(
        "--finder",
        default="cooccurrence",
        choices=("cooccurrence", "dbscan", "hnsw", "hash", "lsh"),
        help="group finder for duplicate/similar roles",
    )
    analyze_parser.add_argument(
        "--similarity-threshold",
        type=int,
        default=1,
        help="max differing users/permissions for 'similar' roles",
    )
    analyze_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for detection (1 = serial, 0 = all cores); "
        "the report is identical for every value",
    )
    analyze_parser.add_argument(
        "--block-rows",
        type=int,
        default=None,
        metavar="ROWS",
        help="row-block size for the co-occurrence product (bounds peak "
        "memory; default: one monolithic block)",
    )
    analyze_parser.add_argument(
        "--kernel",
        default="auto",
        choices=("auto", "sparse", "bits"),
        help="per-block co-occurrence kernel: sparse CSR matmul, "
        "bit-packed AND+popcount, or cost-model dispatch (default); "
        "the report is identical for every choice",
    )
    analyze_parser.add_argument(
        "--format",
        default="text",
        choices=("text", "markdown", "json", "csv"),
        help="report output format",
    )
    analyze_parser.add_argument(
        "--hierarchy",
        metavar="EDGES_JSON",
        help="role-inheritance file (repro-hierarchy JSON); the dataset "
        "is flattened through it before analysis",
    )
    analyze_parser.add_argument(
        "--extensions",
        action="store_true",
        help="also run extension detectors (shadowed roles)",
    )
    analyze_parser.add_argument(
        "--max-findings",
        type=int,
        default=20,
        help="findings shown in text output",
    )
    analyze_parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="log per-span records via stdlib logging at this level "
        "(default: no logging)",
    )
    analyze_parser.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        default=None,
        help="write the run's trace as JSON Lines "
        "(schema: docs/OBSERVABILITY.md)",
    )
    analyze_parser.add_argument(
        "--metrics-out",
        metavar="FILE.json",
        default=None,
        help="write the run's metrics (counter totals, timings, worker "
        "breakdown) as JSON; also enables per-block tracemalloc "
        "peak-memory counters",
    )
    analyze_parser.set_defaults(handler=_cmd_analyze)

    generate_parser = sub.add_parser(
        "generate", help="generate a synthetic dataset"
    )
    generate_parser.add_argument(
        "kind", choices=("org", "departmental"), help="generator to use"
    )
    generate_parser.add_argument("output", help="output JSON file or CSV dir")
    generate_parser.add_argument(
        "--scale-divisor",
        type=int,
        default=100,
        help="org: divide the paper-scale dataset by this factor "
        "(1 = full ~90k users / ~50k roles / ~350k permissions)",
    )
    generate_parser.add_argument(
        "--seed", type=int, default=0, help="generator seed"
    )
    generate_parser.add_argument(
        "--csv", action="store_true", help="write a CSV directory instead of JSON"
    )
    generate_parser.set_defaults(handler=_cmd_generate)

    plan_parser = sub.add_parser(
        "plan", help="build a remediation plan for a dataset"
    )
    plan_parser.add_argument("dataset", help="JSON file or CSV directory")
    plan_parser.add_argument(
        "--finder", default="cooccurrence",
        choices=("cooccurrence", "dbscan", "hnsw", "hash", "lsh"),
    )
    plan_parser.add_argument(
        "--extensions",
        action="store_true",
        help="include extension detectors (shadowed roles) in planning",
    )
    plan_parser.add_argument(
        "--apply",
        metavar="OUTPUT",
        help="apply the plan and write the consolidated dataset here",
    )
    plan_parser.add_argument(
        "--json", action="store_true", help="print the plan as JSON"
    )
    plan_parser.set_defaults(handler=_cmd_plan)

    diff_parser = sub.add_parser(
        "diff",
        help="compare the findings of two datasets (e.g. successive "
        "periodic exports)",
    )
    diff_parser.add_argument("old", help="older dataset (JSON or CSV dir)")
    diff_parser.add_argument("new", help="newer dataset (JSON or CSV dir)")
    diff_parser.add_argument(
        "--finder", default="cooccurrence",
        choices=("cooccurrence", "dbscan", "hnsw", "hash", "lsh"),
    )
    diff_parser.add_argument(
        "--json", action="store_true", help="print the delta as JSON"
    )
    diff_parser.set_defaults(handler=_cmd_diff)

    anonymize_parser = sub.add_parser(
        "anonymize",
        help="pseudonymise a dataset (structure preserved, ids unlinkable)",
    )
    anonymize_parser.add_argument("dataset", help="input JSON file or CSV dir")
    anonymize_parser.add_argument("output", help="output JSON file or CSV dir")
    anonymize_parser.add_argument(
        "--key", default="", help="HMAC key (same key = stable pseudonyms)"
    )
    anonymize_parser.add_argument(
        "--csv", action="store_true", help="write a CSV directory"
    )
    anonymize_parser.set_defaults(handler=_cmd_anonymize)

    render_parser = sub.add_parser(
        "render",
        help="export the tripartite graph as Graphviz DOT "
        "(inefficiencies highlighted)",
    )
    render_parser.add_argument("dataset", help="JSON file or CSV directory")
    render_parser.add_argument(
        "output", nargs="?", help="output .dot file (default: stdout)"
    )
    render_parser.add_argument(
        "--plain",
        action="store_true",
        help="skip the analysis pass; no highlighting",
    )
    render_parser.set_defaults(handler=_cmd_render)

    stats_parser = sub.add_parser(
        "stats", help="print dataset shape statistics"
    )
    stats_parser.add_argument("dataset", help="JSON file or CSV directory")
    stats_parser.add_argument(
        "--json", action="store_true", help="print statistics as JSON"
    )
    stats_parser.set_defaults(handler=_cmd_stats)

    usage_parser = sub.add_parser(
        "usage",
        help="dormancy analysis: join a dataset with an access-log CSV",
    )
    usage_parser.add_argument("dataset", help="JSON file or CSV directory")
    usage_parser.add_argument(
        "log", help="access-log CSV (user_id,permission_id[,timestamp])"
    )
    usage_parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    usage_parser.set_defaults(handler=_cmd_usage)

    bench_parser = sub.add_parser(
        "bench", help="run a paper experiment and print its series/table"
    )
    bench_parser.add_argument(
        "--experiment",
        required=True,
        choices=("fig2", "fig3", "real", "density"),
        help="paper experiment (fig2/fig3/real) or the density ablation",
    )
    bench_parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="fraction of the paper's sweep sizes to run "
        "(1.0 = full 1,000-10,000 sweep; default 0.2)",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=5, help="repetitions per point"
    )
    bench_parser.add_argument(
        "--methods",
        default="dbscan,hnsw,cooccurrence",
        help="comma-separated method list",
    )
    bench_parser.add_argument(
        "--csv", action="store_true", help="print CSV instead of a table"
    )
    bench_parser.add_argument(
        "--scale-divisor",
        type=int,
        default=100,
        help="real: planted-org scale divisor (1 = paper scale)",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    serve_parser = sub.add_parser(
        "serve",
        help="run the analysis service (HTTP/JSON daemon over live state)",
    )
    serve_parser.add_argument(
        "dataset",
        nargs="?",
        help="initial dataset (JSON file or CSV directory); ignored when "
        "--snapshot points at an existing snapshot (warm restart), "
        "omitted = start empty",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8035,
        help="bind port (0 = pick an ephemeral port)",
    )
    serve_parser.add_argument(
        "--snapshot",
        metavar="FILE.json",
        default=None,
        help="snapshot file: loaded on start when present (warm restart), "
        "written on graceful drain",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        metavar="N",
        help="max concurrent /v1/* requests; the next one gets 429 + "
        "Retry-After",
    )
    serve_parser.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="default per-request deadline (clients override with the "
        "X-Deadline header)",
    )
    serve_parser.add_argument(
        "--cache-capacity",
        type=int,
        default=32,
        metavar="N",
        help="reports kept in the fingerprint-keyed LRU cache",
    )
    serve_parser.add_argument(
        "--refresh-mutations",
        type=int,
        default=256,
        metavar="N",
        help="background full re-analysis after N mutations "
        "(0 disables this trigger)",
    )
    serve_parser.add_argument(
        "--refresh-seconds",
        type=float,
        default=None,
        metavar="T",
        help="background full re-analysis after T seconds with pending "
        "mutations (default: disabled)",
    )
    serve_parser.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the startup analysis (faster start, cold caches, no "
        "scheduler baseline)",
    )
    serve_parser.add_argument(
        "--finder",
        default="cooccurrence",
        choices=("cooccurrence", "dbscan", "hnsw", "hash", "lsh"),
        help="default group finder for /v1/analyze and the scheduler",
    )
    serve_parser.add_argument(
        "--similarity-threshold",
        type=int,
        default=1,
        help="similarity threshold shared by /v1/counts and /v1/analyze",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per analysis (1 = serial, 0 = all cores)",
    )
    serve_parser.add_argument(
        "--block-rows",
        type=int,
        default=None,
        metavar="ROWS",
        help="row-block size for the co-occurrence product",
    )
    serve_parser.add_argument(
        "--kernel",
        default="auto",
        choices=("auto", "sparse", "bits"),
        help="per-block co-occurrence kernel (auto = cost-model dispatch)",
    )
    serve_parser.add_argument(
        "--extensions",
        action="store_true",
        help="include extension detectors (shadowed roles) by default",
    )
    serve_parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="log per-request span records via stdlib logging",
    )
    serve_parser.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        default=None,
        help="stream per-request traces as JSON Lines "
        "(schema: docs/OBSERVABILITY.md)",
    )
    serve_parser.add_argument(
        "--slo-target",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request latency SLO target; breaching endpoints degrade "
        "/healthz to 503 (default: SLO tracking disabled)",
    )
    serve_parser.add_argument(
        "--slo-window",
        type=int,
        default=100,
        metavar="N",
        help="recent requests per endpoint the SLO verdict considers",
    )
    serve_parser.add_argument(
        "--slo-budget",
        type=float,
        default=0.1,
        metavar="FRACTION",
        help="tolerated fraction of over-target requests in the window",
    )
    serve_parser.add_argument(
        "--tracez-capacity",
        type=int,
        default=64,
        metavar="N",
        help="recent request traces retained for GET /tracez",
    )
    serve_parser.add_argument(
        "--execution",
        default="inline",
        choices=("inline", "queue"),
        help="analyze execution mode: compute in-process (inline, "
        "default) or enqueue onto the durable job plane (queue; "
        "requires --jobs and attached 'repro work' workers)",
    )
    serve_parser.add_argument(
        "--jobs",
        metavar="FILE.sqlite",
        default=None,
        help="shared job-queue database file (required with "
        "--execution queue; survives restarts)",
    )
    serve_parser.add_argument(
        "--job-lease",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="job lease duration; a worker that stops heartbeating "
        "loses its claim after this long",
    )
    serve_parser.add_argument(
        "--job-max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="claims a job may consume before it is dead-lettered",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    work_parser = sub.add_parser(
        "work",
        help="attach worker processes to a shared job-queue file",
    )
    work_parser.add_argument(
        "queue", metavar="FILE.sqlite", help="shared job-queue database file"
    )
    work_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to attach (1 = run in this process)",
    )
    work_parser.add_argument(
        "--lease",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="lease duration (match the serving daemon's --job-lease)",
    )
    work_parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="claims a job may consume before it is dead-lettered",
    )
    work_parser.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="idle sleep between empty claim attempts",
    )
    work_parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N jobs (default: run until signalled)",
    )
    work_parser.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long without claiming a job "
        "(default: run until signalled)",
    )
    work_parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="log per-job span records via stdlib logging",
    )
    work_parser.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        default=None,
        help="stream per-job traces as JSON Lines (trace IDs stitch "
        "into the enqueuing requests' traces)",
    )
    work_parser.set_defaults(handler=_cmd_work)

    trace_parser = sub.add_parser(
        "trace",
        help="analyse JSONL trace files written by --trace-out",
    )
    trace_parser.set_defaults(handler=lambda args: (trace_parser.print_help(), 2)[1])
    trace_sub = trace_parser.add_subparsers(dest="trace_command")

    trace_summarize = trace_sub.add_parser(
        "summarize",
        help="span-tree summary: critical path, per-name aggregates, "
        "slowest spans",
    )
    trace_summarize.add_argument("tracefile", help="JSONL trace file")
    trace_summarize.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="slowest spans shown",
    )
    trace_summarize.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    trace_summarize.set_defaults(handler=_cmd_trace_summarize)

    trace_flame = trace_sub.add_parser(
        "flame",
        help="export collapsed stacks (flamegraph.pl / speedscope format)",
    )
    trace_flame.add_argument("tracefile", help="JSONL trace file")
    trace_flame.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write collapsed stacks here instead of stdout",
    )
    trace_flame.set_defaults(handler=_cmd_trace_flame)

    trace_diff = trace_sub.add_parser(
        "diff",
        help="per-span-name delta table between two trace files",
    )
    trace_diff.add_argument("before", help="baseline JSONL trace file")
    trace_diff.add_argument("after", help="comparison JSONL trace file")
    trace_diff.add_argument(
        "--json", action="store_true", help="emit the delta rows as JSON"
    )
    trace_diff.set_defaults(handler=_cmd_trace_diff)

    return parser


# ----------------------------------------------------------------------
# Dataset helpers
# ----------------------------------------------------------------------
def _load_dataset(path_text: str) -> RbacState:
    path = Path(path_text)
    if path.is_dir():
        return load_csv(path)
    return load_json(path)


def _save_dataset(state: RbacState, path_text: str, as_csv: bool) -> None:
    if as_csv:
        save_csv(state, path_text)
    else:
        save_json(state, path_text)


# ----------------------------------------------------------------------
# Subcommand handlers
# ----------------------------------------------------------------------
def _build_obs_sinks(args: argparse.Namespace):
    """Sink wiring for the shared ``--log-level``/``--trace-out`` flags.

    One helper behind both ``analyze`` and ``serve`` so the two commands
    cannot drift: returns ``(sinks, trace_sink)`` where ``trace_sink``
    is the closeable :class:`~repro.obs.JsonlTraceSink` (or ``None``).
    """
    from repro.obs import JsonlTraceSink, LoggingSink

    sinks = []
    trace_sink = None
    if args.log_level:
        import logging

        level = getattr(logging, args.log_level.upper())
        # The CLI owns process-wide logging configuration; library code
        # never touches handlers (enforced by the CI logging lint).
        logging.basicConfig(
            level=level, format="%(asctime)s %(name)s %(message)s"
        )
        sinks.append(LoggingSink(level=level))
    if args.trace_out:
        trace_sink = JsonlTraceSink(args.trace_out)
        sinks.append(trace_sink)
    return sinks, trace_sink


def _build_recorder(args: argparse.Namespace):
    """Recorder + closeable sinks for the ``analyze`` observability flags.

    Returns ``(recorder, trace_sink)`` — both ``None`` when no flag asks
    for observability (the engine then uses its own sink-less recorder).
    """
    from repro.obs import Recorder

    sinks, trace_sink = _build_obs_sinks(args)
    if not sinks and not args.metrics_out:
        return None, None
    return Recorder(sinks=sinks, measure_memory=bool(args.metrics_out)), trace_sink


def _cmd_analyze(args: argparse.Namespace) -> int:
    state = _load_dataset(args.dataset)
    if args.hierarchy:
        from repro.hierarchy import flatten, load_hierarchy_json

        state = flatten(state, load_hierarchy_json(args.hierarchy))
    options = dict(
        finder=args.finder,
        similarity_threshold=args.similarity_threshold,
        n_workers=None if args.workers == 0 else args.workers,
        block_rows=args.block_rows,
        kernel=args.kernel,
    )
    if args.extensions:
        config = AnalysisConfig.with_extensions(**options)
    else:
        config = AnalysisConfig(**options)
    recorder, trace_sink = _build_recorder(args)
    try:
        report = analyze(state, config, recorder=recorder)
    finally:
        if trace_sink is not None:
            trace_sink.close()
    if args.metrics_out:
        import json

        payload = dict(report.metrics)
        payload["timings_seconds"] = dict(report.timings)
        payload["total_seconds"] = report.total_seconds
        Path(args.metrics_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(report.to_json())
    elif args.format == "markdown":
        print(report.to_markdown())
    elif args.format == "csv":
        print(report.to_csv(), end="")
    else:
        print(report.to_text(max_findings=args.max_findings))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.core import diff_reports

    config = AnalysisConfig(finder=args.finder)
    old_report = analyze(_load_dataset(args.old), config)
    new_report = analyze(_load_dataset(args.new), config)
    delta = diff_reports(old_report, new_report)
    if args.json:
        import json

        print(json.dumps(delta.to_dict(), indent=2))
    else:
        print(delta.to_text())
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from repro.io import anonymize

    state = _load_dataset(args.dataset)
    pseudonymised = anonymize(state, key=args.key)
    _save_dataset(pseudonymised, args.output, as_csv=args.csv)
    print(
        f"wrote anonymised dataset ({pseudonymised.n_users} users, "
        f"{pseudonymised.n_roles} roles, "
        f"{pseudonymised.n_permissions} permissions) to {args.output}"
    )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.io import state_to_dot

    state = _load_dataset(args.dataset)
    report = None if args.plain else analyze(state)
    dot = state_to_dot(state, report)
    if args.output:
        Path(args.output).write_text(dot, encoding="utf-8")
        print(f"wrote DOT graph to {args.output}")
    else:
        print(dot, end="")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core import dataset_statistics

    statistics = dataset_statistics(_load_dataset(args.dataset))
    if args.json:
        import json

        print(json.dumps(statistics.to_dict(), indent=2))
    else:
        print(statistics.to_text())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "org":
        from repro.datagen import OrgProfile, generate_org

        if args.scale_divisor == 1:
            profile = OrgProfile.paper_scale(seed=args.seed)
        else:
            profile = OrgProfile.small(
                divisor=args.scale_divisor, seed=args.seed
            )
        state = generate_org(profile).state
    else:
        from repro.datagen import DepartmentProfile, generate_departmental_org

        state = generate_departmental_org(DepartmentProfile(seed=args.seed))
    _save_dataset(state, args.output, as_csv=args.csv)
    print(
        f"wrote {state.n_users} users, {state.n_roles} roles, "
        f"{state.n_permissions} permissions to {args.output}"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.remediation import apply_plan, build_plan, measure_reduction

    state = _load_dataset(args.dataset)
    if args.extensions:
        config = AnalysisConfig.with_extensions(finder=args.finder)
    else:
        config = AnalysisConfig(finder=args.finder)
    report = analyze(state, config)
    plan = build_plan(report)
    if args.json:
        import json

        print(json.dumps(plan.to_dict(), indent=2))
    else:
        print(plan.describe())
    if args.apply:
        cleaned = apply_plan(state, plan)
        metrics = measure_reduction(state, cleaned)
        _save_dataset(cleaned, args.apply, as_csv=Path(args.apply).suffix == "")
        print(metrics.describe())
        print(f"wrote consolidated dataset to {args.apply}")
    return 0


def _cmd_usage(args: argparse.Namespace) -> int:
    from repro.usage import UsageAnalysis, load_access_log_csv

    state = _load_dataset(args.dataset)
    log = load_access_log_csv(args.log)
    analysis = UsageAnalysis(state, log)
    if args.json:
        import json

        print(json.dumps(analysis.summary().to_dict(), indent=2))
    else:
        print(analysis.to_text())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.benchharness import (
        render_real_dataset_table,
        render_series_csv,
        render_series_table,
        run_real_dataset,
        run_roles_sweep,
        run_users_sweep,
    )  # noqa: F401 (density imports on demand)

    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())

    if args.experiment == "real":
        from repro.datagen import OrgProfile, PlantedCounts

        if args.scale_divisor == 1:
            profile = OrgProfile.paper_scale()
        else:
            profile = OrgProfile.small(divisor=args.scale_divisor)
        result = run_real_dataset(profile)
        print(
            render_real_dataset_table(
                result, paper_counts=PlantedCounts().as_dict()
            )
        )
        return 0

    if args.experiment == "density":
        from repro.benchharness import run_density_sweep

        result = run_density_sweep(
            [0.01, 0.05, 0.15, 0.30],
            n_roles=max(50, int(round(5000 * args.scale))),
            n_cols=max(50, int(round(1000 * args.scale))),
            methods=methods if "hnsw" not in methods else tuple(
                m for m in methods if m != "hnsw"
            ),
            repeats=args.repeats,
        )
        if args.csv:
            print(render_series_csv(result), end="")
        else:
            print(render_series_table(result))
        return 0

    # Paper sweeps go 1,000 → 10,000 in steps of 1,000; --scale shrinks
    # every size proportionally so quick runs keep the same shape.
    sizes = [
        max(50, int(round(n * args.scale))) for n in range(1000, 10001, 1000)
    ]
    sizes = sorted(set(sizes))
    if args.experiment == "fig2":
        result = run_users_sweep(
            sizes,
            n_roles=max(50, int(round(1000 * args.scale))),
            methods=methods,
            repeats=args.repeats,
        )
    else:
        result = run_roles_sweep(
            sizes,
            n_users=max(50, int(round(1000 * args.scale))),
            methods=methods,
            repeats=args.repeats,
        )
    if args.csv:
        print(render_series_csv(result), end="")
    else:
        print(render_series_table(result))
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs import load_trace_file, summarize_traces
    from repro.obs.traceanalysis import format_summary

    summary = summarize_traces(
        load_trace_file(args.tracefile), top=args.top
    )
    if args.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    # Orphan spans mean the file's parent links are broken — surface it
    # in the exit code so CI smoke jobs catch stitched-tree regressions.
    return 1 if summary["orphan_spans"] else 0


def _cmd_trace_flame(args: argparse.Namespace) -> int:
    from repro.obs import collapsed_stacks, load_trace_file

    lines = collapsed_stacks(load_trace_file(args.tracefile))
    text = "\n".join(lines) + "\n"
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(lines)} collapsed stacks to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_traces, load_trace_file
    from repro.obs.traceanalysis import format_diff

    rows = diff_traces(
        load_trace_file(args.before), load_trace_file(args.after)
    )
    if args.json:
        import json

        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(format_diff(rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import AnalysisService, ServiceConfig, ServiceServer

    options = dict(
        finder=args.finder,
        similarity_threshold=args.similarity_threshold,
        n_workers=None if args.workers == 0 else args.workers,
        block_rows=args.block_rows,
        kernel=args.kernel,
    )
    if args.extensions:
        analysis = AnalysisConfig.with_extensions(**options)
    else:
        analysis = AnalysisConfig(**options)
    config = ServiceConfig(
        queue_limit=args.queue_limit,
        deadline_seconds=args.deadline,
        cache_capacity=args.cache_capacity,
        refresh_mutations=args.refresh_mutations or None,
        refresh_seconds=args.refresh_seconds,
        snapshot_path=args.snapshot,
        warm_start=not args.no_warm,
        slo_target_seconds=args.slo_target,
        slo_window=args.slo_window,
        slo_budget_fraction=args.slo_budget,
        tracez_capacity=args.tracez_capacity,
        execution=args.execution,
        jobs_path=args.jobs,
        job_lease_seconds=args.job_lease,
        job_max_attempts=args.job_max_attempts,
        analysis=analysis,
    )

    sinks, trace_sink = _build_obs_sinks(args)

    state = None
    if args.dataset:
        state = _load_dataset(args.dataset)
    service = AnalysisService(state=state, config=config, sinks=sinks)
    server = ServiceServer(service, host=args.host, port=args.port)
    host, port = server.address
    if service.restored_from_snapshot:
        print(
            f"restored state from snapshot {args.snapshot} "
            f"(mutation_seq={service.mutation_seq})"
        )
    live = service.state
    print(
        f"serving {live.n_users} users / {live.n_roles} roles / "
        f"{live.n_permissions} permissions on http://{host}:{port} "
        f"(queue_limit={args.queue_limit}, deadline={args.deadline:g}s)"
    )
    sys.stdout.flush()

    def _request_stop(signum, frame):  # noqa: ARG001 (signal signature)
        server.request_shutdown()

    previous_term = signal.signal(signal.SIGTERM, _request_stop)
    previous_int = signal.signal(signal.SIGINT, _request_stop)
    try:
        server.serve_forever()
        server.drain()
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
        if trace_sink is not None:
            trace_sink.close()
    if args.snapshot:
        print(f"drained; snapshot written to {args.snapshot}")
    else:
        print("drained")
    return 0


def _work_process_main(queue_path: str, index: int, options: dict) -> None:
    """Entry point of one spawned ``repro work`` child process.

    Installs its own SIGTERM/SIGINT handlers (signal → stop event → the
    worker finishes or releases its current job, then exits) and runs
    one worker loop to completion.
    """
    import signal
    import threading

    from repro.jobs import default_worker_id, run_worker
    from repro.obs import JsonlTraceSink

    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 (signal signature)
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    sinks = []
    trace_sink = None
    trace_out = options.get("trace_out")
    if trace_out:
        # One trace file per worker process — concurrent appends from
        # several processes would interleave mid-record.
        trace_sink = JsonlTraceSink(f"{trace_out}.{index}")
        sinks.append(trace_sink)
    try:
        run_worker(
            queue_path,
            worker_id=default_worker_id(),
            lease_seconds=options["lease"],
            max_attempts=options["max_attempts"],
            poll_seconds=options["poll"],
            max_jobs=options.get("max_jobs"),
            idle_exit_seconds=options.get("idle_exit"),
            stop_event=stop,
            sinks=sinks,
        )
    finally:
        if trace_sink is not None:
            trace_sink.close()


def _cmd_work(args: argparse.Namespace) -> int:
    import signal
    import threading

    if args.workers < 1:
        print(f"error: --workers must be >= 1 (got {args.workers})",
              file=sys.stderr)
        return 2
    options = dict(
        lease=args.lease,
        max_attempts=args.max_attempts,
        poll=args.poll,
        max_jobs=args.max_jobs,
        idle_exit=args.idle_exit,
        trace_out=args.trace_out,
    )
    if args.workers == 1:
        from repro.jobs import default_worker_id, run_worker

        sinks, trace_sink = _build_obs_sinks(args)
        stop = threading.Event()

        def _request_stop(signum, frame):  # noqa: ARG001
            stop.set()

        previous_term = signal.signal(signal.SIGTERM, _request_stop)
        previous_int = signal.signal(signal.SIGINT, _request_stop)
        worker_id = default_worker_id()
        print(f"worker {worker_id} attached to {args.queue}")
        sys.stdout.flush()
        try:
            stats = run_worker(
                args.queue,
                worker_id=worker_id,
                lease_seconds=args.lease,
                max_attempts=args.max_attempts,
                poll_seconds=args.poll,
                max_jobs=args.max_jobs,
                idle_exit_seconds=args.idle_exit,
                stop_event=stop,
                sinks=sinks,
            )
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)
            if trace_sink is not None:
                trace_sink.close()
        print(f"worker done: {stats['done']} completed, "
              f"{stats['failed']} failed")
        return 0

    import multiprocessing

    context = multiprocessing.get_context("spawn")
    children = [
        context.Process(
            target=_work_process_main,
            args=(args.queue, index, options),
            name=f"repro-work-{index}",
        )
        for index in range(args.workers)
    ]
    for child in children:
        child.start()
    print(
        f"{len(children)} workers attached to {args.queue} "
        f"(pids: {', '.join(str(c.pid) for c in children)})"
    )
    sys.stdout.flush()

    def _forward_stop(signum, frame):  # noqa: ARG001
        for child in children:
            if child.is_alive():
                child.terminate()  # children trap SIGTERM and drain

    previous_term = signal.signal(signal.SIGTERM, _forward_stop)
    previous_int = signal.signal(signal.SIGINT, _forward_stop)
    exit_code = 0
    try:
        for child in children:
            child.join()
            if child.exitcode not in (0, None):
                exit_code = 1
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
    print("all workers exited")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
