"""Command-line interface: ``repro analyze / generate / bench / plan``."""

from repro.cli.main import main

__all__ = ["main"]
