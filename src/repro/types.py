"""Shared type aliases and small value types used across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np
import numpy.typing as npt

#: Identifier of a user, role, or permission.  Identifiers are opaque
#: strings; the library never parses them.
EntityId = str

#: A boolean assignment matrix (roles on rows) in dense ``numpy`` form.
BoolMatrix = npt.NDArray[np.bool_]

#: A vector of integer row indices.
IndexArray = npt.NDArray[np.intp]

#: A group of role indices (all sharing the same / similar vectors).
IndexGroup = Sequence[int]


def as_bool_matrix(data: npt.ArrayLike) -> BoolMatrix:
    """Coerce ``data`` into a 2-D boolean ``numpy`` array.

    Accepts lists of lists, integer arrays of 0/1, and boolean arrays.
    Raises :class:`ValueError` if the input is not two-dimensional.
    """
    matrix = np.asarray(data)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    return matrix.astype(bool, copy=False)
