"""Analysis reports: findings, statistics, and renderers.

A :class:`Report` bundles the findings of one analysis run with summary
statistics shaped like the paper's §IV-B narrative (one count per
inefficiency type and axis) and renders to plain text, Markdown, or JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.entities import EntityKind
from repro.core.state import RbacState
from repro.core.taxonomy import (
    Axis,
    Finding,
    InefficiencyType,
    sort_findings,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import AnalysisConfig


@dataclass
class Report:
    """The result of one analysis run."""

    state: RbacState
    findings: list[Finding]
    timings: dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    config: "AnalysisConfig | None" = None
    #: Observability summary for the run (see docs/OBSERVABILITY.md):
    #: counter totals, span count, and the worker breakdown.  Empty when
    #: the report was built outside the engine.
    metrics: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    @classmethod
    def from_payload(
        cls, payload: dict[str, Any], state: RbacState
    ) -> "Report":
        """Rebuild a report from its :meth:`to_dict` payload.

        The inverse serialisation used when a report crosses a process
        boundary as JSON — a queue worker computes and ships
        ``report.to_dict()``; the service reattaches its own ``state``
        (the payload only carries dataset *counts*) and gets live
        findings back for diffing and rendering.  Derived sections of
        the payload (``counts``, ``consolidation``, ``n_findings``) are
        not stored — they are recomputed from the findings, so a
        reconstructed report re-serialises byte-identically.
        """
        from repro.core.engine import AnalysisConfig

        config_payload = payload.get("config")
        return cls(
            state=state,
            findings=[
                Finding.from_dict(item)
                for item in payload.get("findings", [])
            ],
            timings=dict(payload.get("timings_seconds", {})),
            total_seconds=payload.get("total_seconds", 0.0),
            config=(
                AnalysisConfig.from_dict(config_payload)
                if config_payload is not None
                else None
            ),
            metrics=dict(payload.get("metrics", {})),
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def of_type(self, kind: InefficiencyType) -> list[Finding]:
        """Findings of one taxonomy type, in detection order."""
        return [f for f in self.findings if f.type is kind]

    def on_axis(
        self, kind: InefficiencyType, axis: Axis
    ) -> list[Finding]:
        """Findings of one type restricted to one axis."""
        return [f for f in self.findings if f.type is kind and f.axis is axis]

    def sorted_findings(self) -> list[Finding]:
        """Findings ordered for administrator review (severity first)."""
        return sort_findings(self.findings)

    # ------------------------------------------------------------------
    # Statistics (the paper's §IV-B table shape)
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """One count per (type, axis/kind) bucket, in paper order.

        Group findings (types 4-5) are counted in *roles involved*, not in
        number of groups, matching how the paper reports "8,000 roles
        sharing the same users".
        """
        standalone = self.of_type(InefficiencyType.STANDALONE_NODE)
        return {
            "standalone_users": _count_kind(standalone, EntityKind.USER),
            "standalone_permissions": _count_kind(
                standalone, EntityKind.PERMISSION
            ),
            "standalone_roles": _count_kind(standalone, EntityKind.ROLE),
            "roles_without_users": len(
                self.on_axis(InefficiencyType.DISCONNECTED_ROLE, Axis.USERS)
            ),
            "roles_without_permissions": len(
                self.on_axis(
                    InefficiencyType.DISCONNECTED_ROLE, Axis.PERMISSIONS
                )
            ),
            "single_user_roles": len(
                self.on_axis(
                    InefficiencyType.SINGLE_ASSIGNMENT_ROLE, Axis.USERS
                )
            ),
            "single_permission_roles": len(
                self.on_axis(
                    InefficiencyType.SINGLE_ASSIGNMENT_ROLE, Axis.PERMISSIONS
                )
            ),
            "roles_same_users": _roles_in_groups(
                self.on_axis(InefficiencyType.DUPLICATE_ROLES, Axis.USERS)
            ),
            "roles_same_permissions": _roles_in_groups(
                self.on_axis(
                    InefficiencyType.DUPLICATE_ROLES, Axis.PERMISSIONS
                )
            ),
            "roles_similar_users": _roles_in_groups(
                self.on_axis(InefficiencyType.SIMILAR_ROLES, Axis.USERS)
            ),
            "roles_similar_permissions": _roles_in_groups(
                self.on_axis(InefficiencyType.SIMILAR_ROLES, Axis.PERMISSIONS)
            ),
        }

    def extension_counts(self) -> dict[str, int]:
        """Counts for extension detectors (outside the paper's table).

        Keys appear regardless of whether the extension detectors ran,
        so dashboards can rely on the shape; values are 0 when disabled.
        """
        return {
            "shadowed_roles": len(
                self.of_type(InefficiencyType.SHADOWED_ROLE)
            ),
        }

    def consolidation_potential(self) -> dict[str, Any]:
        """How many roles consolidation of type-4 groups could remove.

        Keeping one representative per duplicate group removes
        ``group size - 1`` roles; the paper's headline is that this alone
        is ~10% of all roles in the real dataset.
        """
        removable_users = sum(
            f.group.redundant_count
            for f in self.on_axis(InefficiencyType.DUPLICATE_ROLES, Axis.USERS)
            if f.group is not None
        )
        removable_permissions = sum(
            f.group.redundant_count
            for f in self.on_axis(
                InefficiencyType.DUPLICATE_ROLES, Axis.PERMISSIONS
            )
            if f.group is not None
        )
        n_roles = self.state.n_roles
        removable = removable_users + removable_permissions
        return {
            "removable_via_same_users": removable_users,
            "removable_via_same_permissions": removable_permissions,
            "removable_total_upper_bound": removable,
            "total_roles": n_roles,
            "fraction_of_roles": (removable / n_roles) if n_roles else 0.0,
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def config_dict(self) -> dict[str, Any] | None:
        """The effective analysis configuration, JSON-serialisable.

        ``None`` when the report was built without one.  Rendered in
        JSON and Markdown output so a run is reproducible from its own
        artefacts.
        """
        return self.config.to_dict() if self.config is not None else None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation of the whole report."""
        return {
            "dataset": {
                "users": self.state.n_users,
                "roles": self.state.n_roles,
                "permissions": self.state.n_permissions,
                "user_assignments": self.state.n_user_assignments,
                "permission_assignments": self.state.n_permission_assignments,
            },
            "config": self.config_dict(),
            "counts": self.counts(),
            "consolidation": self.consolidation_potential(),
            "timings_seconds": dict(self.timings),
            "total_seconds": self.total_seconds,
            "metrics": dict(self.metrics),
            "n_findings": len(self.findings),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_text(self, max_findings: int = 20) -> str:
        """Human-readable summary (the CLI's default output)."""
        lines = [
            "RBAC inefficiency report",
            "========================",
            f"dataset: {self.state.n_users} users, {self.state.n_roles} "
            f"roles, {self.state.n_permissions} permissions",
            f"analysis time: {self.total_seconds:.3f}s",
            "",
            "counts by inefficiency:",
        ]
        for key, value in self.counts().items():
            lines.append(f"  {key:<28} {value:>8}")
        consolidation = self.consolidation_potential()
        lines.append("")
        lines.append(
            "consolidating duplicate-role groups could remove up to "
            f"{consolidation['removable_total_upper_bound']} roles "
            f"({consolidation['fraction_of_roles']:.1%} of all roles)"
        )
        if self.config is not None:
            lines.append("")
            lines.append("configuration: " + self._config_summary())
        counters = self.metrics.get("counters") or {}
        if counters:
            workers = self.metrics.get("workers", {})
            lines.append("")
            lines.append(
                f"metrics ({self.metrics.get('spans', 0)} spans, "
                f"{workers.get('mode', 'serial')} mode):"
            )
            for key, value in counters.items():
                lines.append(f"  {key:<34} {value:>10}")
        shown = self.sorted_findings()[:max_findings]
        if shown:
            lines.append("")
            lines.append(f"top findings (showing {len(shown)} of "
                         f"{len(self.findings)}):")
            for finding in shown:
                lines.append(
                    f"  [{finding.severity.value:>6}] {finding.message}"
                )
        return "\n".join(lines)

    def _config_summary(self) -> str:
        """One-line ``key=value`` rendering of the effective config."""
        payload = self.config_dict() or {}
        parts = []
        for key in (
            "finder",
            "similarity_threshold",
            "axes",
            "n_workers",
            "block_rows",
        ):
            value = payload.get(key)
            if isinstance(value, list):
                value = ",".join(str(v) for v in value)
            parts.append(f"{key}={value}")
        return " ".join(parts)

    def to_csv(self) -> str:
        """Findings as CSV (one row per finding) for spreadsheet triage.

        Columns: severity, type, axis, entity_kind, entity_ids
        (;-separated), message.
        """
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["severity", "type", "axis", "entity_kind", "entity_ids",
             "message"]
        )
        for finding in self.sorted_findings():
            writer.writerow(
                [
                    finding.severity.value,
                    finding.type.value,
                    finding.axis.value if finding.axis else "",
                    finding.entity_kind.value,
                    ";".join(finding.entity_ids),
                    finding.message,
                ]
            )
        return buffer.getvalue()

    def to_markdown(self) -> str:
        """Markdown rendering with the counts as a table."""
        lines = [
            "# RBAC inefficiency report",
            "",
            f"- **Users:** {self.state.n_users}",
            f"- **Roles:** {self.state.n_roles}",
            f"- **Permissions:** {self.state.n_permissions}",
            f"- **Analysis time:** {self.total_seconds:.3f}s",
            "",
            "| Inefficiency | Count |",
            "|---|---:|",
        ]
        for key, value in self.counts().items():
            lines.append(f"| {key.replace('_', ' ')} | {value} |")
        consolidation = self.consolidation_potential()
        lines.append("")
        lines.append(
            f"Consolidation could remove up to "
            f"**{consolidation['removable_total_upper_bound']}** roles "
            f"({consolidation['fraction_of_roles']:.1%})."
        )
        config = self.config_dict()
        if config is not None:
            lines.append("")
            lines.append("## Configuration")
            lines.append("")
            lines.append("| Option | Value |")
            lines.append("|---|---|")
            for key, value in config.items():
                if isinstance(value, list):
                    value = ", ".join(str(v) for v in value)
                elif isinstance(value, dict):
                    value = json.dumps(value, sort_keys=True)
                lines.append(f"| {key} | {value} |")
        counters = self.metrics.get("counters") or {}
        if counters:
            lines.append("")
            lines.append("## Metrics")
            lines.append("")
            lines.append("| Counter | Total |")
            lines.append("|---|---:|")
            for key, value in counters.items():
                lines.append(f"| {key} | {value} |")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Report(findings={len(self.findings)}, "
            f"total_seconds={self.total_seconds:.3f})"
        )


def _count_kind(findings: Iterable[Finding], kind: EntityKind) -> int:
    return sum(1 for f in findings if f.entity_kind is kind)


def _roles_in_groups(findings: Iterable[Finding]) -> int:
    """Total roles involved across group findings."""
    return sum(len(f.entity_ids) for f in findings)
