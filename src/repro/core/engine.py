"""Analysis engine: run the detector suite over an RBAC state.

The engine wires the taxonomy together: it instantiates one detector per
enabled inefficiency type (sharing a single group-finder configuration for
types 4 and 5), runs them over a shared :class:`AnalysisContext`, and
collects findings plus per-detector wall-clock timings into a
:class:`~repro.core.report.Report`.

Parallel execution
------------------
With ``n_workers > 1`` the engine partitions the detector list into
independent (detector, axis) work items (see ``Detector.partition``) and
fans them out over a :class:`repro.parallel.ParallelExecutor` process
pool.  RUAM/RPAM are built once in the parent and shipped to each worker
during pool initialisation.  Findings are concatenated in partition
order, which equals serial detection order, so the report — findings,
ordering, and ``counts()`` — is identical for every worker count.
"""

from __future__ import annotations

import os
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any

from repro.core.detectors import (
    AnalysisContext,
    Detector,
    DisconnectedRoleDetector,
    DuplicateRolesDetector,
    SimilarRolesDetector,
    SingleAssignmentDetector,
    StandaloneNodeDetector,
)
from repro.core.grouping.kernels import validate_kernel
from repro.core.report import Report
from repro.core.state import RbacState
from repro.core.taxonomy import Axis, InefficiencyType
from repro.exceptions import ConfigurationError
from repro.obs import NullRecorder, Recorder, current_recorder, use_recorder
from repro.obs.spans import counter_totals, span_count
from repro.parallel import (
    WorkerPool,
    current_pool,
    resolve_workers,
    use_pool,
    validate_workers,
)

#: All five taxonomy types, in paper order.
ALL_TYPES: tuple[InefficiencyType, ...] = (
    InefficiencyType.STANDALONE_NODE,
    InefficiencyType.DISCONNECTED_ROLE,
    InefficiencyType.SINGLE_ASSIGNMENT_ROLE,
    InefficiencyType.DUPLICATE_ROLES,
    InefficiencyType.SIMILAR_ROLES,
)

#: Extension detectors beyond the paper's taxonomy (opt-in).
EXTENSION_TYPES: tuple[InefficiencyType, ...] = (
    InefficiencyType.SHADOWED_ROLE,
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration for a full inefficiency analysis.

    Parameters
    ----------
    enabled_types:
        Which taxonomy types to detect (all five by default).
    finder:
        Group-finder name for types 4-5: ``"cooccurrence"`` (default,
        the paper's algorithm), ``"dbscan"``, ``"hnsw"``, or ``"hash"``.
    finder_options:
        Extra keyword arguments for the finder factory (e.g. HNSW ``m``).
    similarity_threshold:
        The administrator threshold k for type 5 (default 1 — "all but
        one", as in the paper's real-data experiment).
    axes:
        Axes analysed by types 4-5; both by default.
    collapse_duplicates:
        Whether type 5 collapses exact duplicates before grouping.
    n_workers:
        Worker processes for detection: ``1`` (default) runs every
        detector serially in-process; ``None`` uses every core.  The
        report is identical for every value.
    block_rows:
        Row-block size for the co-occurrence finder's blocked product
        (``None`` = one monolithic block).  Forwarded to the finder when
        ``finder == "cooccurrence"``; ignored otherwise.
    kernel:
        Per-block co-occurrence kernel: ``"auto"`` (default; cost-model
        dispatch between the two), ``"sparse"`` (CSR matmul), or
        ``"bits"`` (bit-packed AND + popcount).  An execution knob like
        ``n_workers``/``block_rows``: the report is identical for every
        value.
    """

    enabled_types: tuple[InefficiencyType, ...] = ALL_TYPES
    finder: str = "cooccurrence"
    finder_options: dict = field(default_factory=dict)
    similarity_threshold: int = 1
    axes: tuple[Axis, ...] = (Axis.USERS, Axis.PERMISSIONS)
    collapse_duplicates: bool = True
    n_workers: int | None = 1
    block_rows: int | None = None
    kernel: str = "auto"

    @classmethod
    def with_extensions(cls, **kwargs) -> "AnalysisConfig":
        """A configuration with the paper's five types plus every
        extension detector (currently: shadowed roles)."""
        kwargs.setdefault("enabled_types", ALL_TYPES + EXTENSION_TYPES)
        return cls(**kwargs)

    def __post_init__(self) -> None:
        if self.similarity_threshold < 1:
            raise ConfigurationError(
                "similarity_threshold must be >= 1 "
                f"(got {self.similarity_threshold})"
            )
        unknown = [
            t for t in self.enabled_types if not isinstance(t, InefficiencyType)
        ]
        if unknown:
            raise ConfigurationError(f"not inefficiency types: {unknown!r}")
        # Single source of truth shared with repro.parallel, so the
        # error message is identical wherever n_workers is validated.
        validate_workers(self.n_workers)
        if self.block_rows is not None and self.block_rows < 1:
            raise ConfigurationError(
                f"block_rows must be >= 1 or None, got {self.block_rows}"
            )
        validate_kernel(self.kernel)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable view of the effective configuration.

        Rendered into reports (``Report.to_json`` / ``to_markdown``) so
        a run is reproducible from its own output.
        """
        return {
            "enabled_types": [t.value for t in self.enabled_types],
            "finder": self.finder,
            "finder_options": dict(self.finder_options),
            "similarity_threshold": self.similarity_threshold,
            "axes": [axis.value for axis in self.axes],
            "collapse_duplicates": self.collapse_duplicates,
            "n_workers": self.n_workers,
            "block_rows": self.block_rows,
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AnalysisConfig":
        """Rebuild a configuration from its :meth:`to_dict` payload.

        The inverse that lets an analysis cross a process (or machine)
        boundary as JSON — the job plane ships configs this way — with
        ``__post_init__`` re-validating on the far side.  Unknown keys
        are rejected so schema drift fails loudly.
        """
        known = {
            "enabled_types", "finder", "finder_options",
            "similarity_threshold", "axes", "collapse_duplicates",
            "n_workers", "block_rows", "kernel",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown analysis-config key(s): {', '.join(unknown)}"
            )
        options = dict(payload)
        try:
            if "enabled_types" in options:
                options["enabled_types"] = tuple(
                    InefficiencyType(value)
                    for value in options["enabled_types"]
                )
            if "axes" in options:
                options["axes"] = tuple(
                    Axis(value) for value in options["axes"]
                )
        except ValueError as error:
            raise ConfigurationError(str(error)) from error
        return cls(**options)


def effective_scan_workers(config: AnalysisConfig) -> int:
    """Resolved worker count the blocked scans will use under ``config``.

    The engine-level ``n_workers`` parallelises *detection*; the blocked
    co-occurrence scan fans out only when the co-occurrence finder's own
    ``n_workers`` option asks for it.  The service uses this to decide
    whether holding a warm :class:`~repro.parallel.WorkerPool` across
    requests can pay off.
    """
    if config.finder == "cooccurrence":
        return resolve_workers(config.finder_options.get("n_workers", 1))
    return 1


class AnalysisEngine:
    """Runs the configured detectors and assembles a report."""

    def __init__(self, config: AnalysisConfig | None = None) -> None:
        self.config = config or AnalysisConfig()
        self._detectors = self._build_detectors(self.config)
        # Blocked-scan shape for the shared workspace.  The finder-level
        # options win for the cooccurrence finder (they already default
        # to the engine-level block_rows via _build_detectors); for other
        # finders the engine knob still bounds the workspace scan that
        # serves the shadowed detector.
        finder_options = dict(self.config.finder_options)
        if self.config.finder == "cooccurrence":
            self._scan_block_rows = finder_options.get(
                "block_rows", self.config.block_rows
            )
            self._scan_workers = finder_options.get("n_workers", 1)
            self._scan_kernel = finder_options.get("kernel", self.config.kernel)
        else:
            self._scan_block_rows = self.config.block_rows
            self._scan_workers = 1
            self._scan_kernel = self.config.kernel

    @staticmethod
    def _build_detectors(config: AnalysisConfig) -> list[Detector]:
        from repro.core.grouping import make_group_finder

        finder_options = dict(config.finder_options)
        if config.finder == "cooccurrence":
            # Explicit finder_options win over the engine-level knobs.
            if config.block_rows is not None:
                finder_options.setdefault("block_rows", config.block_rows)
            finder_options.setdefault("kernel", config.kernel)

        detectors: list[Detector] = []
        enabled = set(config.enabled_types)
        if InefficiencyType.STANDALONE_NODE in enabled:
            detectors.append(StandaloneNodeDetector())
        if InefficiencyType.DISCONNECTED_ROLE in enabled:
            detectors.append(DisconnectedRoleDetector())
        if InefficiencyType.SINGLE_ASSIGNMENT_ROLE in enabled:
            detectors.append(SingleAssignmentDetector())
        if InefficiencyType.DUPLICATE_ROLES in enabled:
            detectors.append(
                DuplicateRolesDetector(
                    finder=make_group_finder(config.finder, **finder_options),
                    axes=config.axes,
                )
            )
        if InefficiencyType.SIMILAR_ROLES in enabled:
            detectors.append(
                SimilarRolesDetector(
                    max_differences=config.similarity_threshold,
                    finder=make_group_finder(config.finder, **finder_options),
                    axes=config.axes,
                    collapse_duplicates=config.collapse_duplicates,
                )
            )
        if InefficiencyType.SHADOWED_ROLE in enabled:
            from repro.core.detectors.shadowed import ShadowedRoleDetector

            detectors.append(ShadowedRoleDetector())
        return detectors

    @property
    def detectors(self) -> list[Detector]:
        """The detector instances this engine will run (in order)."""
        return list(self._detectors)

    def analyze(
        self, state: RbacState, recorder: Recorder | None = None
    ) -> Report:
        """Run every enabled detector over ``state``.

        Detection is read-only: the state is not modified, and findings
        are never applied automatically (§III-A: every instance must be
        reviewed by an administrator).

        ``recorder`` receives the run's trace (span tree + counters);
        pass a :class:`repro.obs.Recorder` wired to sinks to export it.
        Without one, a recorder already installed via
        :func:`repro.obs.use_recorder` is adopted (so callers like
        ``benchharness.time_call`` capture engine spans under their own);
        failing that the engine records into a private sink-less recorder.
        Either way the tree is what populates ``Report.timings`` (the
        span durations, same keys as before) and ``Report.metrics``.
        """
        if recorder is None:
            recorder = current_recorder()
        if isinstance(recorder, NullRecorder):
            # Engine-level spans are mandatory: timings and metrics are
            # part of the Report contract.  A sink-less recorder is a
            # handful of dict/list operations per detector — the no-op
            # recorder exists for bare library calls, not for the engine.
            recorder = Recorder()
        context = AnalysisContext(state)
        findings: list = []
        timings: dict[str, float] = {}
        worker_stats: list[dict[str, Any]] | None = None
        n_workers = resolve_workers(self.config.n_workers)
        stack = ExitStack()
        # One worker pool per analyze() for the blocked scans: spawned
        # once, reused by every axis, closed (segments unlinked) on the
        # way out.  An ambient pool — e.g. one held warm by
        # repro.service across requests — takes precedence.
        if (
            resolve_workers(self._scan_workers) > 1
            and current_pool() is None
        ):
            pool = stack.enter_context(
                WorkerPool(resolve_workers(self._scan_workers))
            )
            stack.enter_context(use_pool(pool))
        with stack, use_recorder(recorder):
            with recorder.span(
                "engine.analyze",
                finder=self.config.finder,
                n_workers=n_workers,
                n_roles=state.n_roles,
                n_users=state.n_users,
                n_permissions=state.n_permissions,
            ) as root:
                # Build RUAM/RPAM up front so matrix-construction cost is
                # attributed to its own span rather than to whichever
                # detector happens to run first (the paper computes the
                # matrices once and reuses them across all inefficiency
                # types).  The parallel path additionally relies on this:
                # the matrices are built once here and shipped to every
                # worker.
                with recorder.span("engine.matrix_build") as build_span:
                    build_span.add("matrix.ruam_nnz", int(context.ruam.csr.nnz))
                    build_span.add("matrix.rpam_nnz", int(context.rpam.csr.nnz))
                timings["matrix_build"] = build_span.duration
                # Warm the shared workspace before any detection runs:
                # every detector registers what it needs (scan thresholds,
                # subset pairs, dense/signature artifacts), then the
                # aggregated requests are flushed — one blocked
                # co-occurrence pass per axis serves duplicates, similar,
                # and shadowed alike.  Warming happens in the parent on
                # the parallel path too, so the shipped context carries hot
                # artifacts to every worker.
                warmable = [
                    d
                    for d in self._detectors
                    if type(d).warm is not Detector.warm
                ]
                if warmable:
                    context.workspace.configure(
                        block_rows=self._scan_block_rows,
                        n_workers=self._scan_workers,
                        kernel=self._scan_kernel,
                    )
                    with recorder.span("engine.workspace_warm") as warm_span:
                        for detector in warmable:
                            detector.warm(context)
                        context.workspace.flush()
                    timings["workspace_warm"] = warm_span.duration
                if n_workers > 1:
                    worker_stats = self._detect_parallel(
                        context, n_workers, findings, timings, recorder
                    )
                else:
                    for detector in self._detectors:
                        with recorder.span(
                            f"detector:{detector.name}"
                        ) as span:
                            found = detector.detect(context)
                            span.add("findings", len(found))
                        recorder.observe("detector.seconds", span.duration)
                        findings.extend(found)
                        timings[detector.name] = span.duration
        return Report(
            state=state,
            findings=findings,
            timings=timings,
            total_seconds=root.duration,
            config=self.config,
            metrics=self._build_metrics(root, n_workers, worker_stats, recorder),
        )

    def _build_metrics(
        self,
        root: Any,
        n_workers: int,
        worker_stats: list[dict[str, Any]] | None,
        recorder: Recorder,
    ) -> dict[str, Any]:
        """Assemble ``Report.metrics`` from the run's root span.

        ``counters`` and ``spans`` are deterministic for a given input
        and worker mode (and counter totals are identical between serial
        and parallel runs of the same analysis); the ``per_worker``
        breakdown reflects OS scheduling and is not.

        Schema 2 adds ``histograms``: per-name summaries (count, sum,
        min/max, p50/p90/p99, log-spaced buckets) of the run's
        distribution metrics — per-block kernel timings, per-detector
        durations, published shm bytes.  Worker-local observations
        travel back inside trace fragments and merge into the parent's
        registry exactly (no observation lost or double-counted,
        independent of worker count and merge order).  Observation
        counts track the work partitioning: ``cooccurrence.block_seconds``
        counts match serial and parallel runs exactly (warming happens in
        the parent either way); ``detector.seconds`` counts one
        observation per detector span serially and one per
        (detector, axis) work item in parallel mode.
        """
        workers: dict[str, Any] = {
            "requested": self.config.n_workers,
            "resolved": n_workers,
            "mode": "parallel" if n_workers > 1 else "serial",
        }
        if worker_stats is not None:
            workers["per_worker"] = worker_stats
        return {
            "schema": 2,
            "counters": counter_totals(root),
            "spans": span_count(root),
            "histograms": recorder.registry.histogram_summaries(),
            "workers": workers,
        }

    def _detect_parallel(
        self,
        context: AnalysisContext,
        n_workers: int,
        findings: list,
        timings: dict[str, float],
        recorder: Recorder,
    ) -> list[dict[str, Any]]:
        """Fan independent (detector, axis) work items across workers.

        Results are merged in partition order — which equals serial
        detection order — so findings and counts match the serial engine
        exactly; per-detector timings are the summed worker-side
        durations of that detector's items.  Each worker records its
        item into a local trace and ships it back with the findings; the
        fragments are grafted under the ``engine.detect_parallel`` span
        in the same partition order, mirroring the findings-merge
        contract, so the merged span tree is deterministic too.

        Returns the per-worker ``{"items", "seconds"}`` breakdown in
        first-appearance order (worker identity is OS scheduling and is
        the one non-deterministic part; it is therefore reported only
        in ``Report.metrics``, never on spans).
        """
        from repro.parallel import ParallelExecutor

        items: list[tuple[str, Detector]] = [
            (detector.name, part)
            for detector in self._detectors
            for part in detector.partition()
        ]
        with recorder.span("engine.detect_parallel") as par_span:
            par_span.annotate(n_workers=n_workers, n_items=len(items))
            executor = ParallelExecutor(
                n_workers,
                initializer=_init_detection_worker,
                initargs=(context, recorder.measure_memory),
            )
            results = executor.map(_detect_one, [part for _, part in items])
            if executor.last_fallback_reason is not None:
                par_span.annotate(fallback=executor.last_fallback_reason)
            per_worker: dict[int, dict[str, Any]] = {}
            for index, ((name, _), (part_findings, payload, worker_pid)) in (
                enumerate(zip(items, results))
            ):
                findings.extend(part_findings)
                timings[name] = timings.get(name, 0.0) + payload["duration"]
                recorder.graft(payload, fragment=index)
                stats = per_worker.setdefault(
                    worker_pid, {"items": 0, "seconds": 0.0}
                )
                stats["items"] += 1
                stats["seconds"] += payload["duration"]
        return list(per_worker.values())


#: Per-worker shared analysis context, installed by pool initialisation
#: (or once in-process on the serial fallback path).
_WORKER_CONTEXT: AnalysisContext | None = None
#: Whether worker-side recorders opt into tracemalloc block counters.
_WORKER_MEASURE_MEMORY: bool = False


def _init_detection_worker(
    context: AnalysisContext, measure_memory: bool = False
) -> None:
    """Install the shared context (and its workspace) in this worker.

    The context arrives with whatever the engine's warm phase
    materialised — matrices plus the per-axis workspace artifacts — so
    it lands here exactly once per worker process and every
    (detector × axis) work item scheduled here lands on warm artifacts
    instead of re-deriving them.
    """
    global _WORKER_CONTEXT, _WORKER_MEASURE_MEMORY
    _WORKER_CONTEXT = context
    _WORKER_MEASURE_MEMORY = measure_memory


def _detect_one(detector: Detector) -> tuple[list, dict[str, Any], int]:
    """Process-pool task: run one detection work item.

    Returns the findings, the item's trace fragment (recorded into a
    worker-local recorder and serialised — the parent grafts it into its
    own trace in partition order), and the worker's pid for the
    per-worker breakdown.  The fragment's root duration is the
    worker-side wall-clock of the item.
    """
    assert _WORKER_CONTEXT is not None
    local = Recorder(measure_memory=_WORKER_MEASURE_MEMORY)
    with use_recorder(local):
        with local.span(f"detector:{detector.name}") as span:
            found = detector.detect(_WORKER_CONTEXT)
            span.add("findings", len(found))
        local.observe("detector.seconds", local.traces[-1].duration)
    return found, local.export_fragment(), os.getpid()


def analyze(
    state: RbacState,
    config: AnalysisConfig | None = None,
    recorder: Recorder | None = None,
) -> Report:
    """One-shot convenience wrapper: ``AnalysisEngine(config).analyze(state)``."""
    return AnalysisEngine(config).analyze(state, recorder=recorder)
