"""Analysis engine: run the detector suite over an RBAC state.

The engine wires the taxonomy together: it instantiates one detector per
enabled inefficiency type (sharing a single group-finder configuration for
types 4 and 5), runs them over a shared :class:`AnalysisContext`, and
collects findings plus per-detector wall-clock timings into a
:class:`~repro.core.report.Report`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.detectors import (
    AnalysisContext,
    Detector,
    DisconnectedRoleDetector,
    DuplicateRolesDetector,
    SimilarRolesDetector,
    SingleAssignmentDetector,
    StandaloneNodeDetector,
)
from repro.core.report import Report
from repro.core.state import RbacState
from repro.core.taxonomy import Axis, InefficiencyType
from repro.exceptions import ConfigurationError

#: All five taxonomy types, in paper order.
ALL_TYPES: tuple[InefficiencyType, ...] = (
    InefficiencyType.STANDALONE_NODE,
    InefficiencyType.DISCONNECTED_ROLE,
    InefficiencyType.SINGLE_ASSIGNMENT_ROLE,
    InefficiencyType.DUPLICATE_ROLES,
    InefficiencyType.SIMILAR_ROLES,
)

#: Extension detectors beyond the paper's taxonomy (opt-in).
EXTENSION_TYPES: tuple[InefficiencyType, ...] = (
    InefficiencyType.SHADOWED_ROLE,
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration for a full inefficiency analysis.

    Parameters
    ----------
    enabled_types:
        Which taxonomy types to detect (all five by default).
    finder:
        Group-finder name for types 4-5: ``"cooccurrence"`` (default,
        the paper's algorithm), ``"dbscan"``, ``"hnsw"``, or ``"hash"``.
    finder_options:
        Extra keyword arguments for the finder factory (e.g. HNSW ``m``).
    similarity_threshold:
        The administrator threshold k for type 5 (default 1 — "all but
        one", as in the paper's real-data experiment).
    axes:
        Axes analysed by types 4-5; both by default.
    collapse_duplicates:
        Whether type 5 collapses exact duplicates before grouping.
    """

    enabled_types: tuple[InefficiencyType, ...] = ALL_TYPES
    finder: str = "cooccurrence"
    finder_options: dict = field(default_factory=dict)
    similarity_threshold: int = 1
    axes: tuple[Axis, ...] = (Axis.USERS, Axis.PERMISSIONS)
    collapse_duplicates: bool = True

    @classmethod
    def with_extensions(cls, **kwargs) -> "AnalysisConfig":
        """A configuration with the paper's five types plus every
        extension detector (currently: shadowed roles)."""
        kwargs.setdefault("enabled_types", ALL_TYPES + EXTENSION_TYPES)
        return cls(**kwargs)

    def __post_init__(self) -> None:
        if self.similarity_threshold < 1:
            raise ConfigurationError(
                "similarity_threshold must be >= 1 "
                f"(got {self.similarity_threshold})"
            )
        unknown = [
            t for t in self.enabled_types if not isinstance(t, InefficiencyType)
        ]
        if unknown:
            raise ConfigurationError(f"not inefficiency types: {unknown!r}")


class AnalysisEngine:
    """Runs the configured detectors and assembles a report."""

    def __init__(self, config: AnalysisConfig | None = None) -> None:
        self.config = config or AnalysisConfig()
        self._detectors = self._build_detectors(self.config)

    @staticmethod
    def _build_detectors(config: AnalysisConfig) -> list[Detector]:
        from repro.core.grouping import make_group_finder

        detectors: list[Detector] = []
        enabled = set(config.enabled_types)
        if InefficiencyType.STANDALONE_NODE in enabled:
            detectors.append(StandaloneNodeDetector())
        if InefficiencyType.DISCONNECTED_ROLE in enabled:
            detectors.append(DisconnectedRoleDetector())
        if InefficiencyType.SINGLE_ASSIGNMENT_ROLE in enabled:
            detectors.append(SingleAssignmentDetector())
        if InefficiencyType.DUPLICATE_ROLES in enabled:
            detectors.append(
                DuplicateRolesDetector(
                    finder=make_group_finder(
                        config.finder, **config.finder_options
                    ),
                    axes=config.axes,
                )
            )
        if InefficiencyType.SIMILAR_ROLES in enabled:
            detectors.append(
                SimilarRolesDetector(
                    max_differences=config.similarity_threshold,
                    finder=make_group_finder(
                        config.finder, **config.finder_options
                    ),
                    axes=config.axes,
                    collapse_duplicates=config.collapse_duplicates,
                )
            )
        if InefficiencyType.SHADOWED_ROLE in enabled:
            from repro.core.detectors.shadowed import ShadowedRoleDetector

            detectors.append(ShadowedRoleDetector())
        return detectors

    @property
    def detectors(self) -> list[Detector]:
        """The detector instances this engine will run (in order)."""
        return list(self._detectors)

    def analyze(self, state: RbacState) -> Report:
        """Run every enabled detector over ``state``.

        Detection is read-only: the state is not modified, and findings
        are never applied automatically (§III-A: every instance must be
        reviewed by an administrator).
        """
        context = AnalysisContext(state)
        findings = []
        timings: dict[str, float] = {}
        total_start = time.perf_counter()
        # Build RUAM/RPAM up front so matrix-construction cost is
        # attributed to its own timing bucket rather than to whichever
        # detector happens to run first (the paper computes the matrices
        # once and reuses them across all inefficiency types).
        build_start = time.perf_counter()
        context.ruam
        context.rpam
        timings["matrix_build"] = time.perf_counter() - build_start
        for detector in self._detectors:
            start = time.perf_counter()
            findings.extend(detector.detect(context))
            timings[detector.name] = time.perf_counter() - start
        total = time.perf_counter() - total_start
        return Report(
            state=state,
            findings=findings,
            timings=timings,
            total_seconds=total,
            config=self.config,
        )


def analyze(
    state: RbacState, config: AnalysisConfig | None = None
) -> Report:
    """One-shot convenience wrapper: ``AnalysisEngine(config).analyze(state)``."""
    return AnalysisEngine(config).analyze(state)
