"""Analysis engine: run the detector suite over an RBAC state.

The engine wires the taxonomy together: it instantiates one detector per
enabled inefficiency type (sharing a single group-finder configuration for
types 4 and 5), runs them over a shared :class:`AnalysisContext`, and
collects findings plus per-detector wall-clock timings into a
:class:`~repro.core.report.Report`.

Parallel execution
------------------
With ``n_workers > 1`` the engine partitions the detector list into
independent (detector, axis) work items (see ``Detector.partition``) and
fans them out over a :class:`repro.parallel.ParallelExecutor` process
pool.  RUAM/RPAM are built once in the parent and shipped to each worker
during pool initialisation.  Findings are concatenated in partition
order, which equals serial detection order, so the report — findings,
ordering, and ``counts()`` — is identical for every worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.detectors import (
    AnalysisContext,
    Detector,
    DisconnectedRoleDetector,
    DuplicateRolesDetector,
    SimilarRolesDetector,
    SingleAssignmentDetector,
    StandaloneNodeDetector,
)
from repro.core.report import Report
from repro.core.state import RbacState
from repro.core.taxonomy import Axis, InefficiencyType
from repro.exceptions import ConfigurationError

#: All five taxonomy types, in paper order.
ALL_TYPES: tuple[InefficiencyType, ...] = (
    InefficiencyType.STANDALONE_NODE,
    InefficiencyType.DISCONNECTED_ROLE,
    InefficiencyType.SINGLE_ASSIGNMENT_ROLE,
    InefficiencyType.DUPLICATE_ROLES,
    InefficiencyType.SIMILAR_ROLES,
)

#: Extension detectors beyond the paper's taxonomy (opt-in).
EXTENSION_TYPES: tuple[InefficiencyType, ...] = (
    InefficiencyType.SHADOWED_ROLE,
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration for a full inefficiency analysis.

    Parameters
    ----------
    enabled_types:
        Which taxonomy types to detect (all five by default).
    finder:
        Group-finder name for types 4-5: ``"cooccurrence"`` (default,
        the paper's algorithm), ``"dbscan"``, ``"hnsw"``, or ``"hash"``.
    finder_options:
        Extra keyword arguments for the finder factory (e.g. HNSW ``m``).
    similarity_threshold:
        The administrator threshold k for type 5 (default 1 — "all but
        one", as in the paper's real-data experiment).
    axes:
        Axes analysed by types 4-5; both by default.
    collapse_duplicates:
        Whether type 5 collapses exact duplicates before grouping.
    n_workers:
        Worker processes for detection: ``1`` (default) runs every
        detector serially in-process; ``None`` uses every core.  The
        report is identical for every value.
    block_rows:
        Row-block size for the co-occurrence finder's blocked product
        (``None`` = one monolithic block).  Forwarded to the finder when
        ``finder == "cooccurrence"``; ignored otherwise.
    """

    enabled_types: tuple[InefficiencyType, ...] = ALL_TYPES
    finder: str = "cooccurrence"
    finder_options: dict = field(default_factory=dict)
    similarity_threshold: int = 1
    axes: tuple[Axis, ...] = (Axis.USERS, Axis.PERMISSIONS)
    collapse_duplicates: bool = True
    n_workers: int | None = 1
    block_rows: int | None = None

    @classmethod
    def with_extensions(cls, **kwargs) -> "AnalysisConfig":
        """A configuration with the paper's five types plus every
        extension detector (currently: shadowed roles)."""
        kwargs.setdefault("enabled_types", ALL_TYPES + EXTENSION_TYPES)
        return cls(**kwargs)

    def __post_init__(self) -> None:
        if self.similarity_threshold < 1:
            raise ConfigurationError(
                "similarity_threshold must be >= 1 "
                f"(got {self.similarity_threshold})"
            )
        unknown = [
            t for t in self.enabled_types if not isinstance(t, InefficiencyType)
        ]
        if unknown:
            raise ConfigurationError(f"not inefficiency types: {unknown!r}")
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1 or None, got {self.n_workers}"
            )
        if self.block_rows is not None and self.block_rows < 1:
            raise ConfigurationError(
                f"block_rows must be >= 1 or None, got {self.block_rows}"
            )


class AnalysisEngine:
    """Runs the configured detectors and assembles a report."""

    def __init__(self, config: AnalysisConfig | None = None) -> None:
        self.config = config or AnalysisConfig()
        self._detectors = self._build_detectors(self.config)

    @staticmethod
    def _build_detectors(config: AnalysisConfig) -> list[Detector]:
        from repro.core.grouping import make_group_finder

        finder_options = dict(config.finder_options)
        if config.finder == "cooccurrence" and config.block_rows is not None:
            # Explicit finder_options win over the engine-level knob.
            finder_options.setdefault("block_rows", config.block_rows)

        detectors: list[Detector] = []
        enabled = set(config.enabled_types)
        if InefficiencyType.STANDALONE_NODE in enabled:
            detectors.append(StandaloneNodeDetector())
        if InefficiencyType.DISCONNECTED_ROLE in enabled:
            detectors.append(DisconnectedRoleDetector())
        if InefficiencyType.SINGLE_ASSIGNMENT_ROLE in enabled:
            detectors.append(SingleAssignmentDetector())
        if InefficiencyType.DUPLICATE_ROLES in enabled:
            detectors.append(
                DuplicateRolesDetector(
                    finder=make_group_finder(config.finder, **finder_options),
                    axes=config.axes,
                )
            )
        if InefficiencyType.SIMILAR_ROLES in enabled:
            detectors.append(
                SimilarRolesDetector(
                    max_differences=config.similarity_threshold,
                    finder=make_group_finder(config.finder, **finder_options),
                    axes=config.axes,
                    collapse_duplicates=config.collapse_duplicates,
                )
            )
        if InefficiencyType.SHADOWED_ROLE in enabled:
            from repro.core.detectors.shadowed import ShadowedRoleDetector

            detectors.append(ShadowedRoleDetector())
        return detectors

    @property
    def detectors(self) -> list[Detector]:
        """The detector instances this engine will run (in order)."""
        return list(self._detectors)

    def analyze(self, state: RbacState) -> Report:
        """Run every enabled detector over ``state``.

        Detection is read-only: the state is not modified, and findings
        are never applied automatically (§III-A: every instance must be
        reviewed by an administrator).
        """
        from repro.parallel import resolve_workers

        context = AnalysisContext(state)
        findings: list = []
        timings: dict[str, float] = {}
        total_start = time.perf_counter()
        # Build RUAM/RPAM up front so matrix-construction cost is
        # attributed to its own timing bucket rather than to whichever
        # detector happens to run first (the paper computes the matrices
        # once and reuses them across all inefficiency types).  The
        # parallel path additionally relies on this: the matrices are
        # built once here and shipped to every worker.
        build_start = time.perf_counter()
        context.ruam
        context.rpam
        timings["matrix_build"] = time.perf_counter() - build_start
        n_workers = resolve_workers(self.config.n_workers)
        if n_workers > 1:
            self._detect_parallel(context, n_workers, findings, timings)
        else:
            for detector in self._detectors:
                start = time.perf_counter()
                findings.extend(detector.detect(context))
                timings[detector.name] = time.perf_counter() - start
        total = time.perf_counter() - total_start
        return Report(
            state=state,
            findings=findings,
            timings=timings,
            total_seconds=total,
            config=self.config,
        )

    def _detect_parallel(
        self,
        context: AnalysisContext,
        n_workers: int,
        findings: list,
        timings: dict[str, float],
    ) -> None:
        """Fan independent (detector, axis) work items across workers.

        Results are merged in partition order — which equals serial
        detection order — so findings and counts match the serial engine
        exactly; per-detector timings are the summed worker-side
        durations of that detector's items.
        """
        from repro.parallel import ParallelExecutor

        items: list[tuple[str, Detector]] = [
            (detector.name, part)
            for detector in self._detectors
            for part in detector.partition()
        ]
        executor = ParallelExecutor(
            n_workers,
            initializer=_init_detection_worker,
            initargs=(context,),
        )
        results = executor.map(_detect_one, [part for _, part in items])
        for (name, _), (part_findings, seconds) in zip(items, results):
            findings.extend(part_findings)
            timings[name] = timings.get(name, 0.0) + seconds


#: Per-worker shared analysis context, installed by pool initialisation
#: (or once in-process on the serial fallback path).
_WORKER_CONTEXT: AnalysisContext | None = None


def _init_detection_worker(context: AnalysisContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _detect_one(detector: Detector) -> tuple[list, float]:
    """Process-pool task: run one detection work item, return findings
    plus the worker-side wall-clock it took."""
    assert _WORKER_CONTEXT is not None
    start = time.perf_counter()
    found = detector.detect(_WORKER_CONTEXT)
    return found, time.perf_counter() - start


def analyze(
    state: RbacState, config: AnalysisConfig | None = None
) -> Report:
    """One-shot convenience wrapper: ``AnalysisEngine(config).analyze(state)``."""
    return AnalysisEngine(config).analyze(state)
