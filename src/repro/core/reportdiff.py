"""Diffing two analysis reports — the periodic-run workflow.

The paper's framework is meant to run periodically; what an operator
actually reviews week over week is the *delta*: which inefficiencies are
new, which were resolved, and how the counts are trending.
:func:`diff_reports` computes exactly that.

Findings are matched by a stable identity key (type, axis, affected
entity ids), so a duplicate group keeps its identity as long as its
membership is unchanged, and count deltas line up with the
``Report.counts()`` buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.report import Report
from repro.core.taxonomy import Finding

#: Stable identity of a finding across runs.
FindingKey = tuple[str, str, tuple[str, ...]]


def finding_key(finding: Finding) -> FindingKey:
    """The identity under which findings are matched across reports."""
    return (
        finding.type.value,
        finding.axis.value if finding.axis else "",
        tuple(sorted(finding.entity_ids)),
    )


@dataclass
class ReportDiff:
    """The difference between an older and a newer report."""

    new_findings: list[Finding] = field(default_factory=list)
    resolved_findings: list[Finding] = field(default_factory=list)
    persisting_count: int = 0
    count_deltas: dict[str, int] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when nothing changed between the runs."""
        return (
            not self.new_findings
            and not self.resolved_findings
            and all(delta == 0 for delta in self.count_deltas.values())
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "new": [f.to_dict() for f in self.new_findings],
            "resolved": [f.to_dict() for f in self.resolved_findings],
            "persisting": self.persisting_count,
            "count_deltas": dict(self.count_deltas),
        }

    def to_text(self, max_listed: int = 10) -> str:
        """Human-readable delta summary."""
        lines = [
            "analysis delta",
            "==============",
            f"new findings:       {len(self.new_findings)}",
            f"resolved findings:  {len(self.resolved_findings)}",
            f"persisting:         {self.persisting_count}",
            "",
            "count deltas (new - old):",
        ]
        for key, delta in self.count_deltas.items():
            marker = "+" if delta > 0 else ""
            lines.append(f"  {key:<28} {marker}{delta}")
        if self.new_findings:
            lines.append("")
            lines.append("new:")
            for finding in self.new_findings[:max_listed]:
                lines.append(f"  + {finding.message}")
            if len(self.new_findings) > max_listed:
                lines.append(
                    f"  … and {len(self.new_findings) - max_listed} more"
                )
        if self.resolved_findings:
            lines.append("")
            lines.append("resolved:")
            for finding in self.resolved_findings[:max_listed]:
                lines.append(f"  - {finding.message}")
            if len(self.resolved_findings) > max_listed:
                lines.append(
                    f"  … and {len(self.resolved_findings) - max_listed} more"
                )
        return "\n".join(lines)


def diff_reports(old: Report, new: Report) -> ReportDiff:
    """Compare two reports (typically successive periodic runs).

    Both reports should come from the same analysis configuration;
    otherwise "new"/"resolved" mostly reflects the configuration change.
    """
    old_by_key = {finding_key(f): f for f in old.findings}
    new_by_key = {finding_key(f): f for f in new.findings}

    new_keys = new_by_key.keys() - old_by_key.keys()
    resolved_keys = old_by_key.keys() - new_by_key.keys()
    persisting = len(new_by_key.keys() & old_by_key.keys())

    old_counts = old.counts()
    new_counts = new.counts()
    deltas = {
        key: new_counts[key] - old_counts.get(key, 0) for key in new_counts
    }

    from repro.core.taxonomy import sort_findings

    return ReportDiff(
        new_findings=sort_findings(
            [new_by_key[key] for key in new_keys]
        ),
        resolved_findings=sort_findings(
            [old_by_key[key] for key in resolved_keys]
        ),
        persisting_count=persisting,
        count_deltas=deltas,
    )
