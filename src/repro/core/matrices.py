"""Assignment matrices (RUAM / RPAM) derived from an RBAC state.

The paper never materialises the full ``(r+u+p)^2`` adjacency matrix;
instead it works with the two rectangular sub-matrices (Step 2/3 of
Figure 1):

* **RUAM** — roles x users
* **RPAM** — roles x permissions

:class:`AssignmentMatrix` couples the boolean matrix with its row/column
labels so detector output can be mapped back to entity ids, and lazily
exposes three representations of the same data:

* ``dense`` — ``numpy`` boolean array (what DBSCAN/HNSW consume);
* ``csr`` — ``scipy.sparse`` CSR (what the custom algorithm consumes);
* ``bits`` — :class:`repro.bitmatrix.BitMatrix` (hashing / packed Hamming).
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING, Sequence

import numpy as np
import numpy.typing as npt
import scipy.sparse as sp

from repro.bitmatrix import BitMatrix, to_csr
from repro.exceptions import ValidationError
from repro.types import BoolMatrix, as_bool_matrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.state import RbacState


class AssignmentMatrix:
    """A labelled boolean roles-by-X assignment matrix.

    Parameters
    ----------
    matrix:
        Dense boolean matrix or scipy sparse matrix, roles on rows.
    row_ids:
        Role id per row.
    col_ids:
        User or permission id per column.
    """

    def __init__(
        self,
        matrix: npt.ArrayLike | sp.spmatrix,
        row_ids: Sequence[str],
        col_ids: Sequence[str],
    ) -> None:
        if sp.issparse(matrix):
            self._csr: sp.csr_matrix | None = matrix.tocsr().astype(np.int64)
            self._dense: BoolMatrix | None = None
            shape = self._csr.shape
        else:
            self._dense = as_bool_matrix(matrix)
            self._csr = None
            shape = self._dense.shape
        if shape != (len(row_ids), len(col_ids)):
            raise ValidationError(
                f"matrix shape {shape} does not match labels "
                f"({len(row_ids)} rows, {len(col_ids)} cols)"
            )
        self._row_ids = list(row_ids)
        self._col_ids = list(col_ids)
        if len(set(self._row_ids)) != len(self._row_ids):
            raise ValidationError("row ids must be unique")
        if len(set(self._col_ids)) != len(self._col_ids):
            raise ValidationError("column ids must be unique")

    # ------------------------------------------------------------------
    # Construction from state
    # ------------------------------------------------------------------
    @classmethod
    def ruam(cls, state: "RbacState") -> "AssignmentMatrix":
        """Build the Role-User Assignment Matrix from a state."""
        return cls._from_edges(
            state.role_ids(),
            state.user_ids(),
            {role_id: state.users_of_role(role_id) for role_id in state.role_ids()},
        )

    @classmethod
    def rpam(cls, state: "RbacState") -> "AssignmentMatrix":
        """Build the Role-Permission Assignment Matrix from a state."""
        return cls._from_edges(
            state.role_ids(),
            state.permission_ids(),
            {
                role_id: state.permissions_of_role(role_id)
                for role_id in state.role_ids()
            },
        )

    @classmethod
    def _from_edges(
        cls,
        row_ids: Sequence[str],
        col_ids: Sequence[str],
        edges: dict[str, frozenset[str]],
    ) -> "AssignmentMatrix":
        col_index = {col_id: j for j, col_id in enumerate(col_ids)}
        rows: list[int] = []
        cols: list[int] = []
        for i, row_id in enumerate(row_ids):
            for col_id in edges[row_id]:
                rows.append(i)
                cols.append(col_index[col_id])
        data = np.ones(len(rows), dtype=np.int64)
        csr = sp.csr_matrix(
            (data, (rows, cols)), shape=(len(row_ids), len(col_ids))
        )
        return cls(csr, row_ids, col_ids)

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (len(self._row_ids), len(self._col_ids))

    @property
    def n_rows(self) -> int:
        return len(self._row_ids)

    @property
    def n_cols(self) -> int:
        return len(self._col_ids)

    @property
    def row_ids(self) -> list[str]:
        return list(self._row_ids)

    @property
    def col_ids(self) -> list[str]:
        return list(self._col_ids)

    @property
    def dense(self) -> BoolMatrix:
        """Dense boolean view (materialised on first access)."""
        if self._dense is None:
            assert self._csr is not None
            self._dense = np.asarray(self._csr.todense()).astype(bool)
        return self._dense

    @property
    def csr(self) -> sp.csr_matrix:
        """Sparse CSR view with int64 0/1 entries."""
        if self._csr is None:
            assert self._dense is not None
            self._csr = to_csr(self._dense)
        return self._csr

    @cached_property
    def bits(self) -> BitMatrix:
        """Bit-packed view."""
        return BitMatrix(self.dense)

    # ------------------------------------------------------------------
    # Linear-scan statistics (types 1-3 of the taxonomy)
    # ------------------------------------------------------------------
    @cached_property
    def row_sums(self) -> npt.NDArray[np.int64]:
        """Edges per role — the row sums the paper computes once and reuses."""
        return np.asarray(self.csr.sum(axis=1)).ravel().astype(np.int64)

    @cached_property
    def col_sums(self) -> npt.NDArray[np.int64]:
        """Edges per user/permission column."""
        return np.asarray(self.csr.sum(axis=0)).ravel().astype(np.int64)

    def rows_with_sum(self, value: int) -> list[str]:
        """Role ids whose row sum equals ``value``."""
        indices = np.flatnonzero(self.row_sums == value)
        return [self._row_ids[int(i)] for i in indices]

    def cols_with_sum(self, value: int) -> list[str]:
        """Column (user/permission) ids whose column sum equals ``value``."""
        indices = np.flatnonzero(self.col_sums == value)
        return [self._col_ids[int(i)] for i in indices]

    # ------------------------------------------------------------------
    # Label mapping helpers
    # ------------------------------------------------------------------
    def row_id(self, index: int) -> str:
        return self._row_ids[index]

    def row_index(self, row_id: str) -> int:
        try:
            return self._row_index_map[row_id]
        except KeyError:
            raise ValidationError(f"unknown row id: {row_id!r}") from None

    @cached_property
    def _row_index_map(self) -> dict[str, int]:
        return {row_id: i for i, row_id in enumerate(self._row_ids)}

    def groups_to_ids(self, groups: Sequence[Sequence[int]]) -> list[list[str]]:
        """Map index groups from a group finder back to role ids."""
        return [[self._row_ids[int(i)] for i in group] for group in groups]

    def __repr__(self) -> str:
        return f"AssignmentMatrix(shape={self.shape})"
