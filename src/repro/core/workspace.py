"""Shared per-axis analysis workspace: derive each artifact once.

The paper's custom algorithm owes its speed to one observation: a single
co-occurrence product ``C = M·Mᵀ`` answers both the duplicate (type-4)
and similar (type-5) questions via
``hamming(i, j) = |Rⁱ| + |Rʲ| − 2·C[i, j]``, and the shadowed-role
subset criterion ``C[r, s] = |r|`` falls out of the *same* stored
entries.  Detectors that each recompute the product — or re-slice, re-
pack, or re-hash the same rows — throw that property away.

This module is the memoisation layer that preserves it:

* :class:`AxisWorkspace` — one per axis (RUAM for users, RPAM for
  permissions).  Every derived structure is an *artifact*, built lazily
  on first access and reused afterwards: the nonempty submatrix and its
  original-index map, row norms, the dense and bit-packed views, CSR
  row-content keys and the duplicate buckets/representatives derived
  from them, MinHash signatures, and — central to everything — the
  result of one blocked co-occurrence scan.
* The scan is *requested*, not computed, by consumers
  (:meth:`AxisWorkspace.request_scan`): each consumer registers the
  threshold ``k`` and/or subset-pair collection it will need, and the
  single :func:`~repro.core.grouping.cooccurrence.blocked_scan` pass is
  executed at ``k = max(requests)`` with the union of collections —
  then filtered down per consumer (:meth:`AxisWorkspace.matched_pairs`
  keeps the stored Hamming distances exactly for this purpose).  The
  engine aggregates requests from every enabled detector before
  flushing, so the product is computed **once per axis per analyze()**.
* :class:`CollapsedWorkspace` — the similar detector's
  duplicates-collapsed view.  Its candidate pairs are *derived* from
  the parent scan by remapping row indices onto content-class
  representatives (identical rows have identical distances to
  everything), so collapsing costs no additional product pass.
* :class:`AnalysisWorkspace` — the per-context bundle, hung off
  :class:`~repro.core.detectors.base.AnalysisContext` and shipped with
  it, so parallel workers receive warm artifacts instead of rebuilding
  them per (detector × axis) work item.

Every artifact access records a ``workspace.artifact_hits`` /
``workspace.artifact_misses`` counter (misses also record
``workspace.artifact_bytes`` materialised), and each executed scan
records ``workspace.cooccurrence_passes`` — surfaced in
``Report.metrics["counters"]`` so cache behaviour is observable; see
``docs/ARCHITECTURE.md`` for the artifact lifecycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np
import numpy.typing as npt
import scipy.sparse as sp

from repro.bitmatrix import BitMatrix, csr_row_keys, pack_csr_rows
from repro.core.grouping.cooccurrence import ScanResult, blocked_scan
from repro.obs import (
    ARTIFACT_BYTES,
    ARTIFACT_HITS,
    ARTIFACT_MISSES,
    COOCCURRENCE_PASSES,
    current_recorder,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.detectors.base import AnalysisContext
    from repro.core.matrices import AssignmentMatrix

__all__ = ["AnalysisWorkspace", "AxisWorkspace", "CollapsedWorkspace"]


def _payload_bytes(value: Any) -> int:
    """Best-effort size of a materialised artifact, for the bytes counter."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if sp.issparse(value):
        csr = value
        return int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)
    if isinstance(value, BitMatrix):
        return _payload_bytes(value.words)
    if isinstance(value, ScanResult):
        return value.nbytes()
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (tuple, list)):
        return sum(_payload_bytes(item) for item in value)
    return 0


class _ArtifactCache:
    """Hit/miss-counted memo shared by the workspace views."""

    def __init__(self) -> None:
        self._artifacts: dict[str, Any] = {}

    def _artifact(self, name: str, build: Callable[[], Any]) -> Any:
        """Return the memoised artifact, building (and counting) on miss."""
        try:
            value = self._artifacts[name]
        except KeyError:
            recorder = current_recorder()
            recorder.add(ARTIFACT_MISSES)
            value = build()
            self._artifacts[name] = value
            recorder.add(ARTIFACT_BYTES, _payload_bytes(value))
            return value
        current_recorder().add(ARTIFACT_HITS)
        return value


class AxisWorkspace(_ArtifactCache):
    """Memoised derived artifacts for one analysis axis.

    Wraps one :class:`~repro.core.matrices.AssignmentMatrix` and exposes
    everything the detectors and group finders derive from it.  Row
    indices in every artifact refer to the *nonempty submatrix* (rows
    with at least one edge on the axis) unless stated otherwise;
    :attr:`original` maps them back to full-matrix rows.
    """

    def __init__(
        self,
        matrix: "AssignmentMatrix",
        block_rows: int | None = None,
        n_workers: int | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__()
        self.matrix = matrix
        self._block_rows = block_rows
        self._n_workers = n_workers
        self._kernel = kernel
        # configure() pins the scan shape; request hints only apply while
        # unpinned (standalone detectors carrying finder-level settings).
        self._pinned = (
            block_rows is not None or n_workers is not None
            or kernel is not None
        )
        self._scan: ScanResult | None = None
        self._scan_subsets = False
        self._want_k: int | None = None
        self._want_subsets = False
        self._collapsed: "CollapsedWorkspace | None" = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(
        self,
        block_rows: int | None = None,
        n_workers: int | None = None,
        kernel: str | None = None,
    ) -> None:
        """Pin the blocked-scan shape (engine-level settings win over
        per-finder hints passed through :meth:`request_scan`)."""
        self._block_rows = block_rows
        self._n_workers = n_workers
        if kernel is not None:
            self._kernel = kernel
        self._pinned = True

    # ------------------------------------------------------------------
    # Row-subset artifacts
    # ------------------------------------------------------------------
    @property
    def original(self) -> npt.NDArray[np.int64]:
        """Full-matrix row index per submatrix row."""
        return self._artifact(
            "original",
            lambda: np.flatnonzero(self.matrix.row_sums > 0),
        )

    @property
    def n_rows(self) -> int:
        return len(self.original)

    @property
    def submatrix(self) -> sp.csr_matrix:
        """CSR restriction of the matrix to its nonempty rows."""
        return self._artifact(
            "submatrix", lambda: self.matrix.csr[self.original]
        )

    #: Alias used by group finders (uniform across workspace views).
    @property
    def csr(self) -> sp.csr_matrix:
        return self.submatrix

    @property
    def norms(self) -> npt.NDArray[np.int64]:
        """Row popcounts ``|Rⁱ|`` of the submatrix."""
        return self._artifact(
            "norms", lambda: self.matrix.row_sums[self.original]
        )

    @property
    def dense(self) -> npt.NDArray[np.bool_]:
        """Dense boolean view of the submatrix (DBSCAN / HNSW input)."""
        return self._artifact(
            "dense",
            lambda: np.asarray(self.submatrix.todense()).astype(bool),
        )

    @property
    def bits(self) -> BitMatrix:
        """Bit-packed view of the submatrix rows.

        Packed straight from the CSR structure block by block
        (:func:`repro.bitmatrix.pack_csr_rows`), so building the packed
        words — the bits kernel's input — never materialises the full
        dense matrix.
        """
        return self._artifact(
            "bits",
            lambda: BitMatrix.from_words(
                pack_csr_rows(self.submatrix), self.submatrix.shape[1]
            ),
        )

    # ------------------------------------------------------------------
    # Row-content artifacts
    # ------------------------------------------------------------------
    @property
    def row_keys(self) -> list[bytes]:
        """Stable content key per submatrix row (equal iff equal sets)."""
        return self._artifact(
            "row_keys", lambda: csr_row_keys(self.submatrix)
        )

    def _row_classes(self) -> tuple[Any, ...]:
        return self._artifact("row_classes", self._build_row_classes)

    def _build_row_classes(self) -> tuple[Any, ...]:
        lookup: dict[bytes, int] = {}
        representatives: list[int] = []
        sizes: list[int] = []
        members: list[list[int]] = []
        class_index = np.empty(len(self.row_keys), dtype=np.intp)
        for row, key in enumerate(self.row_keys):
            slot = lookup.get(key)
            if slot is None:
                slot = len(representatives)
                lookup[key] = slot
                representatives.append(row)
                sizes.append(0)
                members.append([])
            sizes[slot] += 1
            members[slot].append(row)
            class_index[row] = slot
        return (
            np.asarray(representatives, dtype=np.intp),
            np.asarray(sizes, dtype=np.int64),
            class_index,
            members,
        )

    @property
    def representatives(self) -> npt.NDArray[np.intp]:
        """First submatrix row of each distinct content (first-seen order)."""
        return self._row_classes()[0]

    @property
    def class_sizes(self) -> npt.NDArray[np.int64]:
        """Rows sharing the content of each representative."""
        return self._row_classes()[1]

    @property
    def class_index(self) -> npt.NDArray[np.intp]:
        """Content-class slot per submatrix row."""
        return self._row_classes()[2]

    @property
    def duplicate_groups(self) -> list[list[int]]:
        """Groups (size >= 2) of identical submatrix rows.

        Same ordering contract as
        :func:`repro.bitmatrix.equal_row_groups_sparse`: members
        ascending, groups by first member (first-seen order is already
        ascending in the first member).
        """
        members = self._row_classes()[3]
        return [list(group) for group in members if len(group) > 1]

    # ------------------------------------------------------------------
    # MinHash signatures
    # ------------------------------------------------------------------
    def signatures(
        self, n_hashes: int = 64, seed: int = 0
    ) -> npt.NDArray[np.uint64]:
        """Memoised per-row MinHash signatures of the submatrix."""
        from repro.lsh.minhash import minhash_signatures

        return self._artifact(
            f"signatures[{n_hashes},{seed}]",
            lambda: minhash_signatures(
                self.submatrix, n_hashes=n_hashes, seed=seed
            ),
        )

    # ------------------------------------------------------------------
    # The blocked co-occurrence scan
    # ------------------------------------------------------------------
    def request_scan(
        self,
        k: int | None = None,
        subsets: bool = False,
        block_rows: int | None = None,
        n_workers: int | None = None,
        kernel: str | None = None,
    ) -> None:
        """Register what an upcoming consumer needs from the scan.

        Requests accumulate; the pass itself runs on the next
        :meth:`scan` (typically the engine's warm flush) at the maximum
        requested ``k`` with the union of requested collections.
        ``block_rows`` / ``n_workers`` / ``kernel`` are *hints* honoured
        only while the workspace has not been pinned by :meth:`configure`.
        """
        if k is not None:
            self._want_k = k if self._want_k is None else max(self._want_k, k)
        if subsets:
            self._want_subsets = True
        if not self._pinned:
            if block_rows is not None:
                self._block_rows = block_rows
            if n_workers is not None:
                self._n_workers = n_workers
            if kernel is not None:
                self._kernel = kernel

    @property
    def scan_pending(self) -> bool:
        """Whether outstanding requests require (re)running the scan."""
        return not self._scan_ready()

    def _scan_ready(self) -> bool:
        scan = self._scan
        if scan is None:
            return self._want_k is None and not self._want_subsets
        if self._want_subsets and not self._scan_subsets:
            return False
        if self._want_k is not None and (
            scan.k is None or scan.k < self._want_k
        ):
            return False
        return True

    def scan(self) -> ScanResult:
        """The memoised blocked co-occurrence pass (run on demand).

        A rebuild (a request arriving *after* a narrower pass already
        ran — the engine's warm aggregation exists to avoid this) keeps
        the union of old and new capabilities and records a second
        ``workspace.cooccurrence_passes``.
        """
        recorder = current_recorder()
        if self._scan is not None and self._scan_ready():
            recorder.add(ARTIFACT_HITS)
            return self._scan
        recorder.add(ARTIFACT_MISSES)
        k = self._want_k
        if self._scan is not None and self._scan.k is not None:
            k = self._scan.k if k is None else max(k, self._scan.k)
        subsets = self._want_subsets or self._scan_subsets
        result = blocked_scan(
            self.submatrix,
            self.norms,
            k=k,
            collect_subsets=subsets,
            block_rows=self._block_rows,
            n_workers=self._n_workers or 1,
            kernel=self._kernel or "auto",
            # Lazy: only a plan containing bits blocks packs the words,
            # and a warm `bits` artifact is reused rather than re-packed.
            words=lambda: self.bits.words,
        )
        recorder.add("cooccurrence.blocks", result.n_blocks)
        recorder.add(COOCCURRENCE_PASSES, 1)
        recorder.add(ARTIFACT_BYTES, result.nbytes())
        self._scan = result
        self._scan_subsets = subsets
        return result

    def matched_pairs(
        self,
        k: int,
        block_rows: int | None = None,
        n_workers: int | None = None,
        kernel: str | None = None,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """Unordered submatrix-row pairs at Hamming distance ``<= k``.

        Served from the shared scan, filtered down by the stored
        distances when the scan ran at a larger ``k``.
        """
        self.request_scan(
            k=k, block_rows=block_rows, n_workers=n_workers, kernel=kernel
        )
        return self.scan().pairs_at(k)

    @property
    def subset_pairs(
        self,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """Directed subset pairs in **full-matrix** row indices.

        ``(r, s)`` with row ``r``'s set a strict-or-equal subset of row
        ``s``'s (``r != s``), sorted lexicographically by ``(r, s)`` —
        the deterministic candidate order the shadowed detector scans.
        Empty rows never have stored co-occurrence entries, so
        restricting the pass to the nonempty submatrix loses nothing.
        """
        return self._artifact("subset_pairs", self._build_subset_pairs)

    def _build_subset_pairs(
        self,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        self.request_scan(subsets=True)
        scan = self.scan()
        rows = np.take(self.original, scan.sub_rows)
        cols = np.take(self.original, scan.sub_cols)
        order = np.lexsort((cols, rows))
        return rows[order], cols[order]

    # ------------------------------------------------------------------
    # Collapsed view
    # ------------------------------------------------------------------
    def collapsed(self) -> "CollapsedWorkspace":
        """The duplicates-collapsed view (one row per distinct content)."""
        if self._collapsed is None:
            self._collapsed = CollapsedWorkspace(self)
        return self._collapsed

    def __repr__(self) -> str:
        return (
            f"AxisWorkspace(artifacts={sorted(self._artifacts)}, "
            f"scan={'built' if self._scan is not None else 'none'})"
        )


class CollapsedWorkspace(_ArtifactCache):
    """Duplicates-collapsed view over a parent :class:`AxisWorkspace`.

    Rows are the parent's content-class representatives (first-seen
    order).  Because identical rows are at identical distances from
    everything, the collapsed candidate pairs are *derived* from the
    parent's scan by index remapping — no second co-occurrence pass.
    Row-sliced artifacts (dense, signatures) likewise derive from the
    parent's rather than recomputing from scratch.
    """

    def __init__(self, parent: AxisWorkspace) -> None:
        super().__init__()
        self.parent = parent

    @property
    def n_rows(self) -> int:
        return len(self.parent.representatives)

    @property
    def original(self) -> npt.NDArray[np.int64]:
        """Full-matrix row index per collapsed row."""
        return self._artifact(
            "original",
            lambda: self.parent.original[self.parent.representatives],
        )

    @property
    def csr(self) -> sp.csr_matrix:
        return self._artifact(
            "csr",
            lambda: self.parent.submatrix[self.parent.representatives],
        )

    @property
    def norms(self) -> npt.NDArray[np.int64]:
        return self._artifact(
            "norms", lambda: self.parent.norms[self.parent.representatives]
        )

    @property
    def dense(self) -> npt.NDArray[np.bool_]:
        return self._artifact(
            "dense", lambda: self.parent.dense[self.parent.representatives]
        )

    @property
    def bits(self) -> BitMatrix:
        return self._artifact("bits", lambda: BitMatrix(self.dense))

    @property
    def class_sizes(self) -> npt.NDArray[np.int64]:
        """Parent rows represented by each collapsed row."""
        return self.parent.class_sizes

    @property
    def duplicate_groups(self) -> list[list[int]]:
        """Always empty: collapsed rows are distinct by construction."""
        return []

    def signatures(
        self, n_hashes: int = 64, seed: int = 0
    ) -> npt.NDArray[np.uint64]:
        """Row slice of the parent's signatures (MinHash is per-row)."""
        return self._artifact(
            f"signatures[{n_hashes},{seed}]",
            lambda: self.parent.signatures(n_hashes, seed)[
                self.parent.representatives
            ],
        )

    def request_scan(
        self,
        k: int | None = None,
        subsets: bool = False,
        block_rows: int | None = None,
        n_workers: int | None = None,
        kernel: str | None = None,
    ) -> None:
        """Forward to the parent: collapsed pairs derive from its scan."""
        self.parent.request_scan(
            k=k, subsets=subsets, block_rows=block_rows,
            n_workers=n_workers, kernel=kernel,
        )

    def matched_pairs(
        self,
        k: int,
        block_rows: int | None = None,
        n_workers: int | None = None,
        kernel: str | None = None,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """Collapsed-row pairs at distance ``<= k``, derived by remap.

        Every stored parent pair ``(i, j)`` maps to the representative
        pair ``(class(i), class(j))`` at the same distance (identical
        content ⇒ identical distances); same-class pairs vanish.  Pairs
        of zero-overlap rows are absent here exactly as they are absent
        from the parent scan — the co-occurrence finder covers them with
        its separate anchor pass.  The output may repeat a representative
        pair (once per contributing parent pair); union-find consumption
        is insensitive to both repetition and order.
        """
        return self._artifact(
            f"collapsed_pairs[{k}]",
            lambda: self._build_matched_pairs(k, block_rows, n_workers, kernel),
        )

    def _build_matched_pairs(
        self,
        k: int,
        block_rows: int | None,
        n_workers: int | None,
        kernel: str | None,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        rows, cols = self.parent.matched_pairs(
            k, block_rows=block_rows, n_workers=n_workers, kernel=kernel
        )
        class_index = self.parent.class_index
        a = class_index[rows].astype(np.int64)
        b = class_index[cols].astype(np.int64)
        keep = a != b
        return a[keep], b[keep]

    def __repr__(self) -> str:
        return f"CollapsedWorkspace(parent={self.parent!r})"


class AnalysisWorkspace:
    """Per-context bundle of :class:`AxisWorkspace` instances.

    Hung off :class:`~repro.core.detectors.base.AnalysisContext` as a
    cached property, so it travels *with* the context: parallel
    detection workers receive whatever the engine warmed in the parent
    and every (detector × axis) item lands on hot artifacts.
    """

    #: Axis name -> context matrix attribute.
    _AXES = {"users": "ruam", "permissions": "rpam"}

    def __init__(self, context: "AnalysisContext") -> None:
        self._context = context
        self._axes: dict[str, AxisWorkspace] = {}
        self._block_rows: int | None = None
        self._n_workers: int | None = None
        self._kernel: str | None = None
        self._configured = False

    def configure(
        self,
        block_rows: int | None = None,
        n_workers: int | None = None,
        kernel: str | None = None,
    ) -> None:
        """Pin the blocked-scan shape for every axis (engine settings)."""
        self._block_rows = block_rows
        self._n_workers = n_workers
        self._kernel = kernel
        self._configured = True
        for workspace in self._axes.values():
            workspace.configure(
                block_rows=block_rows, n_workers=n_workers, kernel=kernel
            )

    def axis(self, axis: Any) -> AxisWorkspace:
        """The workspace for ``axis`` (an :class:`Axis` or its value)."""
        name = getattr(axis, "value", axis)
        try:
            return self._axes[name]
        except KeyError:
            pass
        matrix = getattr(self._context, self._AXES[name])
        workspace = AxisWorkspace(matrix)
        if self._configured:
            workspace.configure(
                block_rows=self._block_rows,
                n_workers=self._n_workers,
                kernel=self._kernel,
            )
        self._axes[name] = workspace
        return workspace

    @property
    def scan_pending(self) -> bool:
        return any(ws.scan_pending for ws in self._axes.values())

    def flush(self) -> None:
        """Run every pending blocked scan, one ``axis:*`` span each.

        Called by the engine after all detectors registered their scan
        requests — the aggregation point that makes "one co-occurrence
        pass per axis per analyze()" hold.
        """
        recorder = current_recorder()
        for name, workspace in self._axes.items():
            if not workspace.scan_pending:
                continue
            with recorder.span(f"axis:{name}", stage="workspace_warm"):
                workspace.scan()

    def __repr__(self) -> str:
        return f"AnalysisWorkspace(axes={sorted(self._axes)})"
