"""Incremental inefficiency tracking for continuously-mutating RBAC data.

The batch engine (:mod:`repro.core.engine`) re-derives everything from
scratch — the right tool for a periodic audit.  Between audits, IAM
systems mutate constantly, and re-running a full analysis per mutation
is wasteful: one assignment touches exactly one role's row.

:class:`IncrementalAuditor` maintains the same inefficiency counts as
:meth:`repro.core.report.Report.counts` under a stream of mutations.
Each mutation is processed in time proportional to the change (the
expensive grouping structures never get rebuilt); ``counts()`` itself is
a linear sweep over maintained indexes, never a quadratic regroup:

* types 1-3 (standalone / disconnected / single-assignment) via live
  membership sets;
* type 4 (duplicates) via content buckets: roles grouped by the exact
  content of their user (permission) set;
* type 5 (similar) via a dynamic proximity graph over *distinct set
  contents*: when a role's set changes, only the neighbourhood of the
  old and new contents is re-examined — candidate contents are found
  through the member → roles reverse index, mirroring how the paper's
  co-occurrence algorithm only inspects overlapping pairs.

Semantics match the batch engine exactly (the test suite asserts
``auditor.counts() == analyze(auditor.state).counts()`` after arbitrary
mutation sequences), with the engine's defaults: empty rows excluded
from grouping and exact duplicates collapsed before similarity.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.state import RbacState
from repro.core.taxonomy import Axis
from repro.exceptions import ConfigurationError
from repro.util import DisjointSet


class _AxisIndex:
    """Duplicate buckets + similarity graph for one axis of one auditor.

    Nodes of the similarity graph are *contents* (frozensets of user or
    permission ids, empty excluded); an edge joins two contents at
    symmetric-difference size ``<= threshold``.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        #: role -> its current content (including empty sets).
        self.role_content: dict[str, frozenset[str]] = {}
        #: content -> roles currently having exactly that content.
        self.buckets: dict[frozenset[str], set[str]] = {}
        #: member id -> contents containing it (non-empty contents only).
        self.member_contents: dict[str, set[frozenset[str]]] = {}
        #: content -> similar contents (distance 1..threshold).
        self.similar: dict[frozenset[str], set[frozenset[str]]] = {}

    # -- bucket/graph maintenance ------------------------------------
    def set_role(self, role_id: str, content: frozenset[str]) -> None:
        """Register/update a role's content."""
        previous = self.role_content.get(role_id)
        if previous == content and role_id in self.role_content:
            return
        if previous is not None:
            self._leave_bucket(role_id, previous)
        self.role_content[role_id] = content
        self._enter_bucket(role_id, content)

    def drop_role(self, role_id: str) -> None:
        previous = self.role_content.pop(role_id, None)
        if previous is not None:
            self._leave_bucket(role_id, previous)

    def _enter_bucket(self, role_id: str, content: frozenset[str]) -> None:
        bucket = self.buckets.get(content)
        if bucket is not None:
            bucket.add(role_id)
            return
        self.buckets[content] = {role_id}
        if content:
            self._add_graph_node(content)

    def _leave_bucket(self, role_id: str, content: frozenset[str]) -> None:
        bucket = self.buckets[content]
        bucket.discard(role_id)
        if not bucket:
            del self.buckets[content]
            if content:
                self._remove_graph_node(content)

    def _add_graph_node(self, content: frozenset[str]) -> None:
        neighbors: set[frozenset[str]] = set()
        for candidate in self._candidates(content):
            if candidate == content:
                continue
            distance = len(content.symmetric_difference(candidate))
            if 1 <= distance <= self.threshold:
                neighbors.add(candidate)
        self.similar[content] = neighbors
        for neighbor in neighbors:
            self.similar[neighbor].add(content)
        for member in content:
            self.member_contents.setdefault(member, set()).add(content)

    def _remove_graph_node(self, content: frozenset[str]) -> None:
        for neighbor in self.similar.pop(content, set()):
            self.similar[neighbor].discard(content)
        for member in content:
            remaining = self.member_contents.get(member)
            if remaining is not None:
                remaining.discard(content)
                if not remaining:
                    del self.member_contents[member]

    def _candidates(
        self, content: frozenset[str]
    ) -> Iterable[frozenset[str]]:
        """Contents that could be within ``threshold`` of ``content``.

        Two sets within symmetric-difference ``k`` either share a member
        (found through the reverse index) or are both of size ``<= k``
        (zero overlap: distance = |A| + |B|).  The same case split the
        co-occurrence algorithm makes.
        """
        seen: set[frozenset[str]] = set()
        for member in content:
            for candidate in self.member_contents.get(member, ()):
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate
        if len(content) < self.threshold:
            # zero-overlap partners need |other| <= threshold - |content|
            for candidate, _roles in self.buckets.items():
                if (
                    candidate
                    and candidate not in seen
                    and len(candidate) + len(content) <= self.threshold
                    and not (candidate & content)
                ):
                    seen.add(candidate)
                    yield candidate

    # -- queries -------------------------------------------------------
    def duplicate_groups(self) -> list[list[str]]:
        """Groups of role ids with identical non-empty content."""
        groups = [
            sorted(roles)
            for content, roles in self.buckets.items()
            if content and len(roles) > 1
        ]
        groups.sort(key=lambda members: members[0])
        return groups

    def similar_components(self) -> list[list[frozenset[str]]]:
        """Connected components (size >= 2) of the similarity graph."""
        contents = [c for c in self.similar if self.similar[c]]
        index_of = {content: i for i, content in enumerate(contents)}
        components = DisjointSet(len(contents))
        for content in contents:
            for neighbor in self.similar[content]:
                components.union(index_of[content], index_of[neighbor])
        return [
            [contents[i] for i in group]
            for group in components.groups(min_size=2)
        ]

    def similar_groups(self) -> list[list[str]]:
        """Representative role ids per similarity component.

        One representative (smallest role id) per distinct content,
        matching the batch detector's collapse-duplicates semantics.
        """
        groups = [
            sorted(min(self.buckets[content]) for content in component)
            for component in self.similar_components()
        ]
        groups.sort(key=lambda members: members[0])
        return groups

    def n_similar_roles(self) -> int:
        """Representatives involved in similarity groups (count key)."""
        return sum(len(component) for component in self.similar_components())


class IncrementalAuditor:
    """Maintains inefficiency counts under a stream of RBAC mutations.

    Construct from an existing state (copied, never aliased) or empty,
    then mutate through the auditor's methods.  ``counts()`` is always
    equal to ``analyze(auditor.state).counts()`` with the default
    configuration and the auditor's similarity threshold.
    """

    def __init__(
        self,
        state: RbacState | None = None,
        similarity_threshold: int = 1,
    ) -> None:
        if similarity_threshold < 1:
            raise ConfigurationError(
                "similarity_threshold must be >= 1 "
                f"(got {similarity_threshold})"
            )
        self.similarity_threshold = int(similarity_threshold)
        self._state = state.copy() if state is not None else RbacState()
        self._users = _AxisIndex(self.similarity_threshold)
        self._permissions = _AxisIndex(self.similarity_threshold)
        for role_id in self._state.role_ids():
            self._users.set_role(role_id, self._state.users_of_role(role_id))
            self._permissions.set_role(
                role_id, self._state.permissions_of_role(role_id)
            )

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def state(self) -> RbacState:
        """The auditor's live state.

        Mutate it **only** through the auditor methods; direct mutation
        desynchronises the indexes.
        """
        return self._state

    # ------------------------------------------------------------------
    # Mutations (same vocabulary as RbacState)
    # ------------------------------------------------------------------
    def add_user(self, user_id: str) -> None:
        self._state.add_user(user_id)

    def add_permission(self, permission_id: str) -> None:
        self._state.add_permission(permission_id)

    def add_role(self, role_id: str) -> None:
        self._state.add_role(role_id)
        self._users.set_role(role_id, frozenset())
        self._permissions.set_role(role_id, frozenset())

    def remove_user(self, user_id: str) -> None:
        affected = self._state.roles_of_user(user_id)
        self._state.remove_user(user_id)
        for role_id in affected:
            self._users.set_role(role_id, self._state.users_of_role(role_id))

    def remove_permission(self, permission_id: str) -> None:
        affected = self._state.roles_of_permission(permission_id)
        self._state.remove_permission(permission_id)
        for role_id in affected:
            self._permissions.set_role(
                role_id, self._state.permissions_of_role(role_id)
            )

    def remove_role(self, role_id: str) -> None:
        self._state.remove_role(role_id)
        self._users.drop_role(role_id)
        self._permissions.drop_role(role_id)

    def assign_user(self, role_id: str, user_id: str) -> None:
        self._state.assign_user(role_id, user_id)
        self._users.set_role(role_id, self._state.users_of_role(role_id))

    def revoke_user(self, role_id: str, user_id: str) -> None:
        self._state.revoke_user(role_id, user_id)
        self._users.set_role(role_id, self._state.users_of_role(role_id))

    def assign_permission(self, role_id: str, permission_id: str) -> None:
        self._state.assign_permission(role_id, permission_id)
        self._permissions.set_role(
            role_id, self._state.permissions_of_role(role_id)
        )

    def revoke_permission(self, role_id: str, permission_id: str) -> None:
        self._state.revoke_permission(role_id, permission_id)
        self._permissions.set_role(
            role_id, self._state.permissions_of_role(role_id)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def duplicate_groups(self, axis: Axis) -> list[list[str]]:
        """Current duplicate-role groups on one axis (type 4)."""
        index = self._users if axis is Axis.USERS else self._permissions
        return index.duplicate_groups()

    def similar_groups(self, axis: Axis) -> list[list[str]]:
        """Current similar-role groups on one axis (type 5),
        one representative per distinct content."""
        index = self._users if axis is Axis.USERS else self._permissions
        return index.similar_groups()

    def counts(self) -> dict[str, int]:
        """Same buckets, keys, and semantics as ``Report.counts()``."""
        state = self._state
        user_sizes = {
            role_id: len(self._users.role_content[role_id])
            for role_id in state.role_ids()
        }
        permission_sizes = {
            role_id: len(self._permissions.role_content[role_id])
            for role_id in state.role_ids()
        }
        standalone_users = sum(
            1
            for user_id in state.user_ids()
            if not state.roles_of_user(user_id)
        )
        standalone_permissions = sum(
            1
            for permission_id in state.permission_ids()
            if not state.roles_of_permission(permission_id)
        )
        return {
            "standalone_users": standalone_users,
            "standalone_permissions": standalone_permissions,
            "standalone_roles": sum(
                1
                for role_id in state.role_ids()
                if user_sizes[role_id] == 0 and permission_sizes[role_id] == 0
            ),
            "roles_without_users": sum(
                1
                for role_id in state.role_ids()
                if user_sizes[role_id] == 0 and permission_sizes[role_id] > 0
            ),
            "roles_without_permissions": sum(
                1
                for role_id in state.role_ids()
                if permission_sizes[role_id] == 0 and user_sizes[role_id] > 0
            ),
            "single_user_roles": sum(
                1 for size in user_sizes.values() if size == 1
            ),
            "single_permission_roles": sum(
                1 for size in permission_sizes.values() if size == 1
            ),
            "roles_same_users": sum(
                len(group) for group in self._users.duplicate_groups()
            ),
            "roles_same_permissions": sum(
                len(group) for group in self._permissions.duplicate_groups()
            ),
            "roles_similar_users": self._users.n_similar_roles(),
            "roles_similar_permissions": (
                self._permissions.n_similar_roles()
            ),
        }
