"""Exact-clustering baseline: DBSCAN over role vectors (§III-C).

Parameters follow the paper: ``min_samples = 2`` (a group of two akin
roles must be found), Hamming distance, and ``eps = max_differences + ε``
where the small epsilon guards against floating-point comparison noise
exactly as the paper does for the scikit-learn implementation.

With ``min_samples = 2`` DBSCAN clusters are the connected components of
the "distance <= eps" graph, so the output matches the custom algorithm
on every input — only slower, which is the point of the baseline.
"""

from __future__ import annotations

from typing import Any

from repro.cluster import DBSCAN, labels_to_groups
from repro.core.grouping.base import GroupFinder, register_group_finder
from repro.exceptions import ConfigurationError
from repro.obs import current_recorder

#: Float-comparison guard added to the integer threshold (paper §III-D).
EPSILON = 1e-6


@register_group_finder("dbscan")
class DbscanGroupFinder(GroupFinder):
    """Group finder backed by the from-scratch DBSCAN implementation.

    Parameters
    ----------
    backend:
        ``"hamming"`` (default) scans dense rows per query, mirroring the
        dense brute-force neighbour search scikit-learn uses on this kind
        of data; ``"bitpacked-hamming"`` runs the same algorithm on packed
        words (used by the ablation benchmarks).
    """

    def __init__(self, backend: str = "hamming") -> None:
        if backend not in ("hamming", "bitpacked-hamming"):
            raise ConfigurationError(f"unsupported backend: {backend!r}")
        self._backend = backend

    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        k = self._check_threshold(max_differences)
        dense = self._dense_of(matrix)
        return self._group_dense(dense, k)

    def find_groups_in(
        self, view: Any, max_differences: int = 0
    ) -> list[list[int]]:
        """Cluster the view's shared dense artifact (no re-densify)."""
        k = self._check_threshold(max_differences)
        if view.n_rows == 0:
            return []
        return self._group_dense(view.dense, k)

    def warm(self, view: Any, max_differences: int = 0) -> None:
        """Materialise the dense artifact DBSCAN will cluster."""
        if view.n_rows:
            view.dense

    def _group_dense(self, dense: Any, k: int) -> list[list[int]]:
        if dense.shape[0] == 0:
            return []
        with current_recorder().span(
            "finder:dbscan", k=k, backend=self._backend
        ) as span:
            span.add("dbscan.rows", int(dense.shape[0]))
            clusterer = DBSCAN(
                eps=k + EPSILON, min_samples=2, metric=self._backend
            )
            labels = clusterer.fit_predict(dense)
            groups = labels_to_groups(labels)
            span.add("dbscan.groups", len(groups))
        return groups
