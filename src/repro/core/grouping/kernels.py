"""Per-block co-occurrence kernels and the ``auto`` dispatch cost model.

The blocked scan (:func:`repro.core.grouping.cooccurrence.blocked_scan`)
reduces each row block of ``C = M @ Mᵀ`` to matched / subset pairs.  How
the block's co-occurrence counts are *produced* is a per-block choice
between two kernels with opposite sweet spots:

``sparse``
    CSR matmul over stored entries.  Cost is proportional to the number
    of multiply-adds ``Σᵢ Σ_{c ∈ Rⁱ} |users c's roles|`` — excellent on
    the sparse matrices typical of real RBAC data, quadratic-ish on
    dense ones (stored entries of ``C`` approach ``n²``).

``bits``
    Bit-packed AND + popcount over ``uint64`` words.  Cost is the fixed
    ``block_rows · n · ceil(m / 64)`` words regardless of density —
    worse than sparse on very sparse data, far better once matrices get
    dense.  Only overlapping pairs (``popcount(AND) >= 1``) are emitted,
    which makes the output entry set identical to the sparse kernel's
    stored entries (binary data never stores explicit zeros in ``C``).

``auto`` picks per block by comparing the two cost estimates below.  The
constants are calibrated nanosecond weights, not laws: what matters is
the *ratio*, which sets the crossover density (roughly 15–20% with a
hardware popcount).  Both kernels return the same ``(rows, cols,
shared)`` triple over the same entry set, so the choice is invisible to
everything downstream — a property the kernel-parity test suite pins.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.bitmatrix.packed import HAVE_HW_POPCOUNT, popcount
from repro.exceptions import ConfigurationError

#: Recognised kernel names, in the order the CLI advertises them.
KERNELS = ("auto", "sparse", "bits")

#: Estimated cost of one CSR multiply-add (gather + multiply + scatter
#: into the hash-based accumulator scipy uses for CSR @ CSR).
SPARSE_NS_PER_FLOP = 2.5

#: Estimated cost of AND + popcount + accumulate for one uint64 word,
#: with numpy's hardware popcount ufunc (numpy >= 2.0)…
BITS_NS_PER_WORD_HW = 5.0

#: …and with the 16-bit table-lookup fallback (gather-bound, ~7x worse;
#: the crossover density shifts accordingly).
BITS_NS_PER_WORD_TABLE = 35.0

#: Target bytes for the bits kernel's per-tile AND intermediate; the
#: column dimension is tiled so peak memory stays bounded by this, not
#: by ``block_rows * n * n_words * 8``.
_TILE_BYTES = 16 * 1024 * 1024

_EMPTY = np.empty(0, dtype=np.int64)


def validate_kernel(kernel: str) -> str:
    """Validate a kernel option, returning the normalised name."""
    if kernel not in KERNELS:
        raise ConfigurationError(
            f"kernel must be one of {'|'.join(KERNELS)}, got {kernel!r}"
        )
    return kernel


def bits_ns_per_word() -> float:
    """The active per-word cost estimate for the bits kernel."""
    return BITS_NS_PER_WORD_HW if HAVE_HW_POPCOUNT else BITS_NS_PER_WORD_TABLE


def sparse_row_flops(csr, csr_t) -> npt.NDArray[np.int64]:
    """Per-row multiply-add counts for the CSR block product.

    Row ``i`` of ``C`` costs ``Σ_{c ∈ Rⁱ} nnz(Mᵀ row c)`` multiply-adds;
    summing over a block's rows gives that block's sparse-kernel cost.
    Computed structurally (values ignored) in ``O(nnz)``.
    """
    col_nnz = np.diff(csr_t.indptr).astype(np.int64)
    gathered = col_nnz[csr.indices]
    running = np.concatenate(([0], np.cumsum(gathered, dtype=np.int64)))
    return running[csr.indptr[1:]] - running[csr.indptr[:-1]]


def plan_kernels(
    csr,
    csr_t,
    bounds: list[tuple[int, int]],
    kernel: str = "auto",
) -> list[str]:
    """Choose ``sparse`` or ``bits`` for each block of the scan.

    For explicit kernels this is a constant plan.  For ``auto`` each
    block compares the sparse cost (its rows' multiply-add counts) with
    the density-independent bits cost (``block · n · n_words`` popcounted
    words) and takes the cheaper side.  Blocks are planned independently:
    a matrix with a dense stripe and a sparse tail gets a mixed plan.
    """
    validate_kernel(kernel)
    if kernel != "auto":
        return [kernel] * len(bounds)
    n_rows, n_cols = csr.shape
    n_words = max(1, -(-int(n_cols) // 64))
    row_flops = sparse_row_flops(csr, csr_t)
    word_ns = bits_ns_per_word()
    plan = []
    for start, stop in bounds:
        sparse_ns = SPARSE_NS_PER_FLOP * float(row_flops[start:stop].sum())
        bits_ns = word_ns * float((stop - start) * n_rows * n_words)
        plan.append("bits" if bits_ns < sparse_ns else "sparse")
    return plan


def scan_block_sparse(
    csr, csr_t, start: int, stop: int
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Stored entries of ``C[start:stop] = M[start:stop] @ Mᵀ``.

    Returns ``(rows, cols, shared)`` with ``rows`` in global coordinates.
    """
    product = (csr[start:stop] @ csr_t).tocoo()
    rows = product.row.astype(np.int64) + start
    cols = product.col.astype(np.int64)
    return rows, cols, product.data.astype(np.int64)


def scan_block_bits(
    words: npt.NDArray[np.uint64], start: int, stop: int
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Overlapping entries of ``C[start:stop]`` from packed words.

    ``shared(i, j) = popcount(wordsᵢ & wordsⱼ)``; only entries with
    ``shared >= 1`` are emitted, which is exactly the stored-entry set of
    the sparse kernel on binary data — the parity contract.  The column
    dimension is tiled so the AND intermediate stays under
    ``_TILE_BYTES`` no matter how large the matrix is.
    """
    n_rows, n_words = words.shape
    block = np.ascontiguousarray(words[start:stop])
    b = stop - start
    if b == 0 or n_rows == 0:
        return _EMPTY, _EMPTY, _EMPTY
    tile = max(1, _TILE_BYTES // max(1, b * n_words * 8))
    rows_parts, cols_parts, shared_parts = [], [], []
    for j0 in range(0, n_rows, tile):
        j1 = min(j0 + tile, n_rows)
        overlap = np.bitwise_and(
            block[:, None, :], words[None, j0:j1, :]
        )
        shared = popcount(overlap).sum(axis=2)
        r, c = np.nonzero(shared)
        if len(r):
            rows_parts.append(r.astype(np.int64) + start)
            cols_parts.append(c.astype(np.int64) + j0)
            shared_parts.append(shared[r, c])
    if not rows_parts:
        return _EMPTY, _EMPTY, _EMPTY
    return (
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(shared_parts),
    )


def reduce_block(
    rows: npt.NDArray[np.int64],
    cols: npt.NDArray[np.int64],
    shared: npt.NDArray[np.int64],
    norms: npt.NDArray[np.int64],
    k: int | None,
    collect_subsets: bool,
) -> tuple[npt.NDArray[np.int64], ...]:
    """Reduce one block's co-occurrence entries to matched/subset pairs.

    Shared by both kernels, so the per-block counters derived from the
    outputs (candidate, matched and subset pair counts) are identical
    whichever kernel produced the entries.  Returns
    ``(matched_rows, matched_cols, hamming, sub_rows, sub_cols,
    n_candidates)``.
    """
    sub_rows, sub_cols = _EMPTY, _EMPTY
    if collect_subsets:
        # g^{ij} = |R^i|  iff  R^i ⊆ R^j (diagonal excluded).
        subset = (shared == norms[rows]) & (rows != cols)
        sub_rows, sub_cols = rows[subset], cols[subset]

    matched_rows, matched_cols, hamming = _EMPTY, _EMPTY, _EMPTY
    n_candidates = 0
    if k is not None:
        # Only consider each unordered pair once.
        upper = rows < cols
        rows, cols, shared = rows[upper], cols[upper], shared[upper]
        n_candidates = int(len(rows))

        # hamming(i, j) = |R^i| + |R^j| - 2 g^{ij}; for k = 0 the
        # "<= 0" test is the paper's indicator function I[i, j]
        # (distance zero iff equal sets of equal size).
        distance = norms[rows] + norms[cols] - 2 * shared
        mask = distance <= k
        matched_rows, matched_cols = rows[mask], cols[mask]
        hamming = distance[mask]
    return matched_rows, matched_cols, hamming, sub_rows, sub_cols, n_candidates
