"""Role group finders — the three approaches of §III-C plus two extras.

A *group finder* takes a roles-by-X boolean matrix and returns groups of
row indices whose rows are identical (``max_differences = 0``) or differ in
at most ``max_differences`` positions.  All finders share the semantics
documented on :class:`~repro.core.grouping.base.GroupFinder`:

* exact duplicates → equivalence classes of row equality;
* similar roles → connected components of the "Hamming ≤ k" graph.

Implementations:

* :class:`CooccurrenceGroupFinder` — the paper's custom algorithm
  (sparse ``M·Mᵀ`` co-occurrence counting); exact and deterministic.
* :class:`DbscanGroupFinder` — the exact-clustering baseline (DBSCAN,
  Hamming metric, ``min_samples=2``, ``eps = k + ε``).
* :class:`HnswGroupFinder` — the approximate baseline (HNSW index,
  Manhattan metric, one radius query per role); may miss members.
* :class:`HashGroupFinder` — ablation: content-hash grouping, exact
  duplicates only.
* :class:`LshGroupFinder` — extension: MinHash LSH candidates with exact
  verification (complete at k = 0, sound at k >= 1); see ``repro.lsh``.
"""

from repro.core.grouping.base import (
    GROUP_FINDERS,
    GroupFinder,
    make_group_finder,
)
from repro.core.grouping.cooccurrence import CooccurrenceGroupFinder
from repro.core.grouping.exact_dbscan import DbscanGroupFinder
from repro.core.grouping.approximate_hnsw import HnswGroupFinder
from repro.core.grouping.hashing import HashGroupFinder

# The MinHash-LSH finder lives in its own substrate package; importing it
# here registers it under the name "lsh" alongside the paper's methods.
from repro.lsh.finder import LshGroupFinder

__all__ = [
    "GroupFinder",
    "GROUP_FINDERS",
    "make_group_finder",
    "CooccurrenceGroupFinder",
    "DbscanGroupFinder",
    "HnswGroupFinder",
    "HashGroupFinder",
    "LshGroupFinder",
]
