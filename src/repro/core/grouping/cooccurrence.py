"""The paper's custom co-occurrence algorithm (§III-C, "Our Algorithm").

Let ``M`` be RUAM (or RPAM) and ``C = M @ M.T`` the role co-occurrence
matrix, so ``C[i, j] = g(R^i, R^j)`` counts users shared by roles ``i``
and ``j`` and ``C[i, i] = |R^i|``.  Then:

* **Exact duplicates** — the paper's indicator function:
  ``I[i, j] = 1  iff  |R^i| = C[i, j] = |R^j|`` (two sets of equal size
  sharing that many elements are equal).
* **Similar roles** — from the inclusion-exclusion identity
  ``hamming(i, j) = |R^i| + |R^j| - 2 * C[i, j]``, roles are similar when
  that value is ``<= k``.

Both checks touch only the *stored* entries of the sparse product, which
is what makes the algorithm fast: for realistic RBAC data, most role pairs
share no users at all and never appear in ``C``.  Pairs with no overlap
are only relevant when ``|R^i| + |R^j| <= k`` (tiny roles), handled by a
separate linear pass.  The result is exact and fully deterministic.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.grouping.base import GroupFinder, register_group_finder
from repro.util import DisjointSet


@register_group_finder("cooccurrence")
class CooccurrenceGroupFinder(GroupFinder):
    """Exact, deterministic group finder via sparse co-occurrence counts."""

    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        k = self._check_threshold(max_differences)
        csr = self._csr_of(matrix)
        n_rows = csr.shape[0]
        if n_rows == 0:
            return []

        norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
        components = DisjointSet(n_rows)

        cooc = (csr @ csr.T).tocoo()
        row = cooc.row
        col = cooc.col
        shared = cooc.data

        # Only consider each unordered pair once.
        upper = row < col
        row, col, shared = row[upper], col[upper], shared[upper]

        if k == 0:
            # I[i, j] = 1 iff |R^i| = g^{ij} = |R^j|.
            mask = (shared == norms[row]) & (shared == norms[col])
        else:
            # hamming(i, j) = |R^i| + |R^j| - 2 g^{ij} <= k.
            mask = (norms[row] + norms[col] - 2 * shared) <= k

        for i, j in zip(row[mask].tolist(), col[mask].tolist()):
            components.union(i, j)

        self._union_non_overlapping(components, norms, k)
        return components.groups(min_size=2)

    @staticmethod
    def _union_non_overlapping(
        components: DisjointSet, norms: np.ndarray, k: int
    ) -> None:
        """Handle pairs absent from the sparse product (zero overlap).

        Two non-overlapping roles are within distance ``k`` iff
        ``|R^i| + |R^j| <= k`` (for ``k = 0``: both empty).  Every such
        pair involves only roles with ``|R| <= k``; and if a pair
        qualifies, both members also qualify against the smallest-norm
        role, so chaining everything through that anchor yields exactly
        the right connected components without enumerating all pairs.
        """
        small = np.flatnonzero(norms <= k)
        if len(small) < 2:
            return
        anchor = int(small[np.argmin(norms[small])])
        anchor_norm = int(norms[anchor])
        for index in small.tolist():
            if index == anchor:
                continue
            if anchor_norm + int(norms[index]) <= k:
                components.union(anchor, index)
