"""The paper's custom co-occurrence algorithm (§III-C, "Our Algorithm").

Let ``M`` be RUAM (or RPAM) and ``C = M @ M.T`` the role co-occurrence
matrix, so ``C[i, j] = g(R^i, R^j)`` counts users shared by roles ``i``
and ``j`` and ``C[i, i] = |R^i|``.  Then:

* **Exact duplicates** — the paper's indicator function:
  ``I[i, j] = 1  iff  |R^i| = C[i, j] = |R^j|`` (two sets of equal size
  sharing that many elements are equal).
* **Similar roles** — from the inclusion-exclusion identity
  ``hamming(i, j) = |R^i| + |R^j| - 2 * C[i, j]``, roles are similar when
  that value is ``<= k``.

Both checks touch only the *stored* entries of the sparse product, which
is what makes the algorithm fast: for realistic RBAC data, most role pairs
share no users at all and never appear in ``C``.  Pairs with no overlap
are only relevant when ``|R^i| + |R^j| <= k`` (tiny roles), handled by a
separate linear pass.  The result is exact and fully deterministic.

Blocked kernel
--------------
``C`` is never materialised whole.  The product is computed one row
block at a time — ``C[start:stop] = M[start:stop] @ Mᵀ`` — and each
block is immediately reduced to its *matching pairs* ``(i, j)`` before
the next block is formed, so peak memory is bounded by the densest
single block (``O(block_rows · r)`` stored entries worst case) instead
of ``nnz(C)``.  Blocks are independent, which is what lets
``n_workers > 1`` fan them out across a process pool; the union-find
reduction is order-insensitive, so the groups are identical for every
``block_rows`` and worker count.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Iterable, Iterator

import numpy as np
import numpy.typing as npt
import scipy.sparse as sp

from repro.core.grouping.base import GroupFinder, register_group_finder
from repro.exceptions import ConfigurationError
from repro.obs import Recorder, current_recorder, use_recorder
from repro.parallel import ParallelExecutor, resolve_workers
from repro.util import DisjointSet

#: Read-only per-worker state installed by :func:`_init_block_worker`
#: (shipped once per worker, not once per block).
_WORKER_STATE: dict[str, Any] = {}

_EMPTY = np.empty(0, dtype=np.int64)


def _init_block_worker(
    csr: sp.csr_matrix,
    csr_t: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int | None,
    measure_memory: bool = False,
    collect_subsets: bool = False,
) -> None:
    _WORKER_STATE["csr"] = csr
    _WORKER_STATE["csr_t"] = csr_t
    _WORKER_STATE["norms"] = norms
    _WORKER_STATE["k"] = k
    _WORKER_STATE["measure_memory"] = measure_memory
    _WORKER_STATE["collect_subsets"] = collect_subsets


def _scan_block(
    csr: sp.csr_matrix,
    csr_t: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int | None,
    collect_subsets: bool,
    start: int,
    stop: int,
) -> tuple[npt.NDArray[np.int64], ...]:
    """One row block of the co-occurrence scan.

    Computes ``M[start:stop] @ Mᵀ`` and reduces its stored entries to

    * the *matching* pairs ``(i, j)``, ``i < j``, at Hamming distance
      ``<= k`` — together with their distances so callers can filter the
      same pass down to any smaller threshold (``k is None`` skips this
      collection entirely);
    * when ``collect_subsets`` — the *directed* pairs ``(i, j)``,
      ``i != j``, whose row ``i`` set is a subset of row ``j``'s
      (``g^{ij} = |R^i|``; the shadowed-role criterion).

    Returns ``(rows, cols, hamming, sub_rows, sub_cols)``; only the
    (small) matched arrays survive the block, which is what bounds peak
    memory at the densest single block.

    Each block is wrapped in a ``cooccurrence.block`` span carrying the
    per-stage counters that make the kernel's cost explainable: stored
    entries of the block product, candidate pairs examined, and pairs
    matched.  When the current recorder opted into ``measure_memory``
    the block's peak allocation is measured via ``tracemalloc``
    (expensive, and it resets the interpreter's global peak marker —
    hence opt-in; see :class:`repro.obs.Recorder`).
    """
    recorder = current_recorder()
    with recorder.span("cooccurrence.block", start=start, stop=stop) as span:
        measure = recorder.measure_memory
        if measure:
            started_tracing = not tracemalloc.is_tracing()
            if started_tracing:
                tracemalloc.start()
            tracemalloc.reset_peak()
        try:
            product = (csr[start:stop] @ csr_t).tocoo()
            rows = product.row.astype(np.int64) + start
            cols = product.col.astype(np.int64)
            shared = product.data
            span.add("cooccurrence.product_nnz", int(product.nnz))

            sub_rows, sub_cols = _EMPTY, _EMPTY
            if collect_subsets:
                # g^{ij} = |R^i|  iff  R^i ⊆ R^j (diagonal excluded).
                subset = (shared == norms[rows]) & (rows != cols)
                sub_rows, sub_cols = rows[subset], cols[subset]
                span.add("cooccurrence.subset_pairs", int(len(sub_rows)))

            matched_rows, matched_cols, hamming = _EMPTY, _EMPTY, _EMPTY
            if k is not None:
                # Only consider each unordered pair once.
                upper = rows < cols
                rows, cols, shared = rows[upper], cols[upper], shared[upper]
                span.add("cooccurrence.candidate_pairs", int(len(rows)))

                # hamming(i, j) = |R^i| + |R^j| - 2 g^{ij}; for k = 0 the
                # "<= 0" test is the paper's indicator function I[i, j]
                # (distance zero iff equal sets of equal size).
                distance = norms[rows] + norms[cols] - 2 * shared
                mask = distance <= k
                matched_rows, matched_cols = rows[mask], cols[mask]
                hamming = distance[mask]
                span.add("cooccurrence.matched_pairs", int(len(matched_rows)))
        finally:
            if measure:
                span.add(
                    "cooccurrence.block_peak_bytes",
                    int(tracemalloc.get_traced_memory()[1]),
                )
                if started_tracing:
                    tracemalloc.stop()
        return matched_rows, matched_cols, hamming, sub_rows, sub_cols


def _block_matching_pairs(
    csr: sp.csr_matrix,
    csr_t: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int,
    start: int,
    stop: int,
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Matching role pairs ``(i, j)``, ``i < j``, found in one row block."""
    rows, cols, _, _, _ = _scan_block(csr, csr_t, norms, k, False, start, stop)
    return rows, cols


def _pairs_of_block(bounds: tuple[int, int]) -> tuple[
    npt.NDArray[np.int64], npt.NDArray[np.int64], dict[str, Any]
]:
    """Process-pool task: block bounds in, matched pairs out.

    Also returns the block's trace fragment, recorded into a
    worker-local recorder, so the parent can graft the worker-side spans
    into its own trace in deterministic block order.
    """
    local = Recorder(measure_memory=_WORKER_STATE.get("measure_memory", False))
    with use_recorder(local):
        rows, cols = _block_matching_pairs(
            _WORKER_STATE["csr"],
            _WORKER_STATE["csr_t"],
            _WORKER_STATE["norms"],
            _WORKER_STATE["k"],
            *bounds,
        )
    return rows, cols, local.traces[-1].to_dict()


def _scan_of_block(bounds: tuple[int, int]) -> tuple[
    tuple[npt.NDArray[np.int64], ...], dict[str, Any]
]:
    """Process-pool task for :func:`blocked_scan` (full scan results)."""
    local = Recorder(measure_memory=_WORKER_STATE.get("measure_memory", False))
    with use_recorder(local):
        arrays = _scan_block(
            _WORKER_STATE["csr"],
            _WORKER_STATE["csr_t"],
            _WORKER_STATE["norms"],
            _WORKER_STATE["k"],
            _WORKER_STATE["collect_subsets"],
            *bounds,
        )
    return arrays, local.traces[-1].to_dict()


def blocked_scan(
    csr: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int | None = None,
    collect_subsets: bool = False,
    block_rows: int | None = None,
    n_workers: int | None = 1,
) -> "ScanResult":
    """One blocked pass over ``C = M·Mᵀ``, reduced to reusable pairs.

    The single entry point behind both the type-4/5 grouping criteria
    and the shadowed-role subset criterion: everything every detector
    needs from the co-occurrence product is collected in *one* pass, so
    the product is never recomputed per consumer (the workspace layer
    memoises the result; see :mod:`repro.core.workspace`).

    Per block the product is immediately reduced (matched pairs with
    their Hamming distances, plus directed subset pairs when requested)
    before the next block is formed, so peak memory stays bounded by the
    densest single block for every combination of collections.  Blocks
    fan out over a process pool when ``n_workers > 1``; results and the
    grafted trace fragments are concatenated in block order, so the
    outcome is identical for every ``block_rows`` / worker count.

    Emits one ``cooccurrence.block`` span per block (under whatever span
    is currently open) and returns the number of blocks on the result;
    callers are expected to record it as the ``cooccurrence.blocks``
    counter on their own span.
    """
    n_rows = csr.shape[0]
    if n_rows == 0:
        return ScanResult(k, _EMPTY, _EMPTY, _EMPTY, _EMPTY, _EMPTY, 0)
    effective_block = block_rows or n_rows
    bounds = [
        (start, min(start + effective_block, n_rows))
        for start in range(0, n_rows, effective_block)
    ]
    csr_t = csr.T.tocsr()
    recorder = current_recorder()
    workers = resolve_workers(n_workers)
    if workers > 1 and len(bounds) > 1:
        executor = ParallelExecutor(
            workers,
            initializer=_init_block_worker,
            initargs=(
                csr, csr_t, norms, k, recorder.measure_memory, collect_subsets
            ),
        )
        pieces = []
        for arrays, payload in executor.map(_scan_of_block, bounds):
            recorder.graft(payload)
            pieces.append(arrays)
    else:
        pieces = [
            _scan_block(csr, csr_t, norms, k, collect_subsets, start, stop)
            for start, stop in bounds
        ]
    merged = [np.concatenate(column) for column in zip(*pieces)]
    return ScanResult(k, *merged, n_blocks=len(bounds))


class ScanResult:
    """The reusable output of one :func:`blocked_scan` pass.

    ``rows``/``cols``/``hamming`` hold the unordered matched pairs
    (``rows < cols``) at distance ``<= k``; ``sub_rows``/``sub_cols``
    the directed subset pairs (empty unless collected).  Because the
    distances are kept, :meth:`pairs_at` filters the same pass down to
    any threshold ``<= k`` without touching the product again.
    """

    __slots__ = (
        "k", "rows", "cols", "hamming", "sub_rows", "sub_cols", "n_blocks"
    )

    def __init__(self, k, rows, cols, hamming, sub_rows, sub_cols, n_blocks):
        self.k = k
        self.rows = rows
        self.cols = cols
        self.hamming = hamming
        self.sub_rows = sub_rows
        self.sub_cols = sub_cols
        self.n_blocks = n_blocks

    def pairs_at(
        self, k: int
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """Matched pairs at distance ``<= k`` (requires ``k <= self.k``)."""
        if self.k is None or k > self.k:
            raise ValueError(
                f"scan collected pairs at k={self.k}, cannot filter to k={k}"
            )
        if k == self.k:
            return self.rows, self.cols
        keep = self.hamming <= k
        return self.rows[keep], self.cols[keep]

    def nbytes(self) -> int:
        arrays = (
            self.rows, self.cols, self.hamming, self.sub_rows, self.sub_cols
        )
        return int(sum(a.nbytes for a in arrays))


@register_group_finder("cooccurrence")
class CooccurrenceGroupFinder(GroupFinder):
    """Exact, deterministic group finder via sparse co-occurrence counts.

    Parameters
    ----------
    block_rows:
        Rows of ``M`` per product block.  ``None`` (the default) computes
        the whole product in a single block — the original monolithic
        behaviour; any value >= 1 bounds peak memory at the cost of one
        sparse product per block.  Output is identical for every value.
    n_workers:
        Worker processes for the blocked product (``None`` = all cores).
        With one worker, or a single block, everything runs in-process.
        Output is identical for every worker count.
    """

    def __init__(
        self, block_rows: int | None = None, n_workers: int | None = 1
    ) -> None:
        if block_rows is not None and block_rows < 1:
            raise ConfigurationError(
                f"block_rows must be >= 1, got {block_rows}"
            )
        self._block_rows = block_rows
        self._n_workers = resolve_workers(n_workers)

    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        k = self._check_threshold(max_differences)
        csr = self._csr_of(matrix)
        n_rows = csr.shape[0]
        if n_rows == 0:
            return []

        recorder = current_recorder()
        with recorder.span("finder:cooccurrence", k=k) as span:
            span.add("cooccurrence.rows", int(n_rows))
            span.add("cooccurrence.input_nnz", int(csr.nnz))

            norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
            components = DisjointSet(n_rows)

            n_blocks = 0
            for rows, cols in self._matching_pairs(csr, norms, k):
                n_blocks += 1
                for i, j in zip(rows.tolist(), cols.tolist()):
                    components.union(i, j)
            span.add("cooccurrence.blocks", n_blocks)

            self._union_non_overlapping(components, norms, k)
            groups = components.groups(min_size=2)
            span.add("cooccurrence.groups", len(groups))
        return groups

    def find_groups_in(
        self, view: Any, max_differences: int = 0
    ) -> list[list[int]]:
        """Group rows of a workspace view using its shared scan.

        Identical output to :meth:`find_groups` on the view's matrix,
        but candidate pairs come from the memoised
        :meth:`~repro.core.workspace.AxisWorkspace.matched_pairs`
        artifact (one blocked pass per axis, shared with every other
        consumer) instead of a private product.  On a cold workspace the
        pass runs here, under this finder's span, with this finder's
        ``block_rows`` / ``n_workers`` as hints.
        """
        k = self._check_threshold(max_differences)
        n_rows = view.n_rows
        if n_rows == 0:
            return []
        recorder = current_recorder()
        with recorder.span("finder:cooccurrence", k=k) as span:
            span.add("cooccurrence.rows", int(n_rows))
            # 0/1 entries: the stored-entry count is the norm total.
            span.add("cooccurrence.input_nnz", int(view.norms.sum()))
            rows, cols = view.matched_pairs(
                k,
                block_rows=self._block_rows,
                n_workers=self._n_workers,
            )
            components = DisjointSet(n_rows)
            for i, j in zip(rows.tolist(), cols.tolist()):
                components.union(i, j)
            self._union_non_overlapping(components, view.norms, k)
            groups = components.groups(min_size=2)
            span.add("cooccurrence.groups", len(groups))
        return groups

    def warm(self, view: Any, max_differences: int = 0) -> None:
        """Register this finder's scan need on the view (no pass yet)."""
        if max_differences < 0 or view.n_rows == 0:
            return
        view.request_scan(
            k=int(max_differences),
            block_rows=self._block_rows,
            n_workers=self._n_workers,
        )

    def _matching_pairs(
        self,
        csr: sp.csr_matrix,
        norms: npt.NDArray[np.int64],
        k: int,
    ) -> Iterable[tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]]:
        """Matched pairs per block, blocked/parallel as configured."""
        n_rows = csr.shape[0]
        block_rows = self._block_rows or n_rows
        bounds = [
            (start, min(start + block_rows, n_rows))
            for start in range(0, n_rows, block_rows)
        ]
        # M and Mᵀ are both kept in CSR so every block product is a
        # CSR @ CSR multiply (scipy would otherwise re-convert the lazy
        # transpose view once per block).
        csr_t = csr.T.tocsr()
        if self._n_workers > 1 and len(bounds) > 1:
            return self._matching_pairs_parallel(csr, csr_t, norms, k, bounds)
        # Serial: yield lazily so only one block product is alive at a
        # time — this is what bounds peak memory.
        return (
            _block_matching_pairs(csr, csr_t, norms, k, start, stop)
            for start, stop in bounds
        )

    def _matching_pairs_parallel(
        self,
        csr: sp.csr_matrix,
        csr_t: sp.csr_matrix,
        norms: npt.NDArray[np.int64],
        k: int,
        bounds: list[tuple[int, int]],
    ) -> Iterator[tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]]:
        """Fan block products over a pool; graft worker spans in order.

        Worker-side block spans come back as serialised fragments and
        are grafted into the parent trace in block order (the same
        order the serial path records them), keeping the merged trace
        deterministic for every worker count.
        """
        recorder = current_recorder()
        executor = ParallelExecutor(
            self._n_workers,
            initializer=_init_block_worker,
            initargs=(csr, csr_t, norms, k, recorder.measure_memory),
        )
        results = executor.map(_pairs_of_block, bounds)
        for rows, cols, payload in results:
            recorder.graft(payload)
            yield rows, cols

    @staticmethod
    def _union_non_overlapping(
        components: DisjointSet, norms: np.ndarray, k: int
    ) -> None:
        """Handle pairs absent from the sparse product (zero overlap).

        Two non-overlapping roles are within distance ``k`` iff
        ``|R^i| + |R^j| <= k`` (for ``k = 0``: both empty).  Every such
        pair involves only roles with ``|R| <= k``; and if a pair
        qualifies, both members also qualify against the smallest-norm
        role, so chaining everything through that anchor yields exactly
        the right connected components without enumerating all pairs.
        """
        small = np.flatnonzero(norms <= k)
        if len(small) < 2:
            return
        anchor = int(small[np.argmin(norms[small])])
        anchor_norm = int(norms[anchor])
        for index in small.tolist():
            if index == anchor:
                continue
            if anchor_norm + int(norms[index]) <= k:
                components.union(anchor, index)
