"""The paper's custom co-occurrence algorithm (§III-C, "Our Algorithm").

Let ``M`` be RUAM (or RPAM) and ``C = M @ M.T`` the role co-occurrence
matrix, so ``C[i, j] = g(R^i, R^j)`` counts users shared by roles ``i``
and ``j`` and ``C[i, i] = |R^i|``.  Then:

* **Exact duplicates** — the paper's indicator function:
  ``I[i, j] = 1  iff  |R^i| = C[i, j] = |R^j|`` (two sets of equal size
  sharing that many elements are equal).
* **Similar roles** — from the inclusion-exclusion identity
  ``hamming(i, j) = |R^i| + |R^j| - 2 * C[i, j]``, roles are similar when
  that value is ``<= k``.

Both checks touch only the *stored* entries of the sparse product, which
is what makes the algorithm fast: for realistic RBAC data, most role pairs
share no users at all and never appear in ``C``.  Pairs with no overlap
are only relevant when ``|R^i| + |R^j| <= k`` (tiny roles), handled by a
separate linear pass.  The result is exact and fully deterministic.

Blocked kernel
--------------
``C`` is never materialised whole.  The product is computed one row
block at a time — ``C[start:stop] = M[start:stop] @ Mᵀ`` — and each
block is immediately reduced to its *matching pairs* ``(i, j)`` before
the next block is formed, so peak memory is bounded by the densest
single block (``O(block_rows · r)`` stored entries worst case) instead
of ``nnz(C)``.  Blocks are independent, which is what lets
``n_workers > 1`` fan them out across a process pool; the union-find
reduction is order-insensitive, so the groups are identical for every
``block_rows`` and worker count.

Kernel dispatch
---------------
*How* a block's co-occurrence counts are produced is a per-block choice
(:mod:`repro.core.grouping.kernels`): the CSR matmul kernel for sparse
blocks, a bit-packed AND + popcount kernel for dense ones, with ``auto``
picking per block from a cost model.  Both kernels emit the same entry
set, so downstream results are kernel-independent.

Worker data plane
-----------------
When blocks fan out across processes the input arrays travel through
``multiprocessing.shared_memory`` (:mod:`repro.parallel.shm`): published
once per scan, attached read-only by workers, unlinked when the scan
finishes.  Per-task payloads carry only a manifest and block bounds.
If the ambient :class:`~repro.parallel.WorkerPool` is warm (engine- or
service-owned), worker processes are reused across scans; without
shared memory the scan falls back to the legacy pickled-``initargs``
path, and without a usable pool to the serial loop — results are
identical on every path.
"""

from __future__ import annotations

import tracemalloc
from collections import OrderedDict
from typing import Any, Callable

import numpy as np
import numpy.typing as npt
import scipy.sparse as sp

from repro.bitmatrix.packed import pack_csr_rows
from repro.core.grouping.base import GroupFinder, register_group_finder
from repro.core.grouping.kernels import (
    plan_kernels,
    reduce_block,
    scan_block_bits,
    scan_block_sparse,
    validate_kernel,
)
from repro.exceptions import ConfigurationError
from repro.obs import Recorder, current_recorder, use_recorder
from repro.parallel import (
    ParallelExecutor,
    SharedMemoryUnavailable,
    WorkerPool,
    current_pool,
    publish,
    resolve_workers,
)
from repro.util import DisjointSet

#: Read-only per-worker state installed by :func:`_init_block_worker`
#: (legacy pickled path: shipped once per worker, not once per block).
_WORKER_STATE: dict[str, Any] = {}

_EMPTY = np.empty(0, dtype=np.int64)


def _init_block_worker(
    csr: sp.csr_matrix,
    csr_t: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int | None,
    measure_memory: bool = False,
    collect_subsets: bool = False,
    words: npt.NDArray[np.uint64] | None = None,
) -> None:
    _WORKER_STATE["csr"] = csr
    _WORKER_STATE["csr_t"] = csr_t
    _WORKER_STATE["norms"] = norms
    _WORKER_STATE["k"] = k
    _WORKER_STATE["measure_memory"] = measure_memory
    _WORKER_STATE["collect_subsets"] = collect_subsets
    _WORKER_STATE["words"] = words


def _scan_block(
    csr: sp.csr_matrix,
    csr_t: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int | None,
    collect_subsets: bool,
    start: int,
    stop: int,
    kernel: str = "sparse",
    words: npt.NDArray[np.uint64] | None = None,
) -> tuple[npt.NDArray[np.int64], ...]:
    """One row block of the co-occurrence scan.

    Produces the block's co-occurrence entries with the named concrete
    kernel (``sparse`` or ``bits`` — dispatch happened upstream in
    :func:`~repro.core.grouping.kernels.plan_kernels`) and reduces them
    to

    * the *matching* pairs ``(i, j)``, ``i < j``, at Hamming distance
      ``<= k`` — together with their distances so callers can filter the
      same pass down to any smaller threshold (``k is None`` skips this
      collection entirely);
    * when ``collect_subsets`` — the *directed* pairs ``(i, j)``,
      ``i != j``, whose row ``i`` set is a subset of row ``j``'s
      (``g^{ij} = |R^i|``; the shadowed-role criterion).

    Returns ``(rows, cols, hamming, sub_rows, sub_cols)``; only the
    (small) matched arrays survive the block, which is what bounds peak
    memory at the densest single block.

    Each block is wrapped in a ``cooccurrence.block`` span carrying the
    per-stage counters that make the kernel's cost explainable: entries
    of the block product, candidate pairs examined, and pairs matched.
    Both kernels produce the same entry set, so every one of these
    counters is kernel-independent — only the span's ``kernel``
    attribute records the choice.  When the current recorder opted into
    ``measure_memory`` the block's peak allocation is measured via
    ``tracemalloc`` (expensive, and it resets the interpreter's global
    peak marker — hence opt-in; see :class:`repro.obs.Recorder`).
    """
    recorder = current_recorder()
    with recorder.span("cooccurrence.block", start=start, stop=stop) as span:
        span.annotate(kernel=kernel)
        measure = recorder.measure_memory
        if measure:
            started_tracing = not tracemalloc.is_tracing()
            if started_tracing:
                tracemalloc.start()
            tracemalloc.reset_peak()
        try:
            if kernel == "bits":
                if words is None:
                    raise ValueError("bits kernel requires packed words")
                rows, cols, shared = scan_block_bits(words, start, stop)
            else:
                rows, cols, shared = scan_block_sparse(csr, csr_t, start, stop)
            span.add("cooccurrence.product_nnz", int(len(rows)))

            (
                matched_rows, matched_cols, hamming,
                sub_rows, sub_cols, n_candidates,
            ) = reduce_block(rows, cols, shared, norms, k, collect_subsets)
            if collect_subsets:
                span.add("cooccurrence.subset_pairs", int(len(sub_rows)))
            if k is not None:
                span.add("cooccurrence.candidate_pairs", n_candidates)
                span.add("cooccurrence.matched_pairs", int(len(matched_rows)))
        finally:
            if measure:
                span.add(
                    "cooccurrence.block_peak_bytes",
                    int(tracemalloc.get_traced_memory()[1]),
                )
                if started_tracing:
                    tracemalloc.stop()
    # Observed outside the ``with`` so the span's duration is final;
    # worker-local observations merge back via the trace fragment.
    recorder.observe("cooccurrence.block_seconds", span.duration)
    return matched_rows, matched_cols, hamming, sub_rows, sub_cols


def _scan_of_block(task: tuple[int, int, str]) -> tuple[
    tuple[npt.NDArray[np.int64], ...], dict[str, Any]
]:
    """Legacy pool task (pickled ``initargs`` data plane).

    Also returns the block's trace fragment, recorded into a
    worker-local recorder, so the parent can graft the worker-side spans
    into its own trace in deterministic block order.
    """
    start, stop, kernel = task
    local = Recorder(measure_memory=_WORKER_STATE.get("measure_memory", False))
    with use_recorder(local):
        arrays = _scan_block(
            _WORKER_STATE["csr"],
            _WORKER_STATE["csr_t"],
            _WORKER_STATE["norms"],
            _WORKER_STATE["k"],
            _WORKER_STATE["collect_subsets"],
            start,
            stop,
            kernel=kernel,
            words=_WORKER_STATE["words"],
        )
    return arrays, local.export_fragment()


class _ScanSpec:
    """Per-scan constants shipped with every shared-memory task.

    A few hundred bytes: the segment manifest plus scalar scan
    parameters.  The matrix arrays themselves never appear in task
    tuples — that is the zero-copy contract the shm tests pin.
    """

    __slots__ = (
        "manifest", "shape", "shape_t", "k", "collect_subsets",
        "measure_memory", "has_words",
    )

    def __init__(
        self, manifest, shape, shape_t, k, collect_subsets,
        measure_memory, has_words,
    ):
        self.manifest = manifest
        self.shape = shape
        self.shape_t = shape_t
        self.k = k
        self.collect_subsets = collect_subsets
        self.measure_memory = measure_memory
        self.has_words = has_words

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


#: Worker-side cache of attached segments and the arrays rebuilt over
#: them, keyed by segment name.  Bounded: a warm pool outlives many
#: scans, and each evicted entry's mapping must be closed so the kernel
#: can free the (already unlinked) segment's pages.
_ATTACH_CACHE: OrderedDict[str, tuple[Any, dict[str, Any]]] = OrderedDict()
_ATTACH_CACHE_SIZE = 4


def _attached_arrays(spec: _ScanSpec) -> dict[str, Any]:
    """Rebuild (or fetch cached) views over the task's shared segment."""
    from repro.parallel import attach  # local import keeps fork cheap

    cached = _ATTACH_CACHE.get(spec.manifest.name)
    if cached is not None:
        _ATTACH_CACHE.move_to_end(spec.manifest.name)
        return cached[1]
    segment = attach(spec.manifest)
    views = segment.views
    csr = sp.csr_matrix(
        (views["m_data"], views["m_indices"], views["m_indptr"]),
        shape=spec.shape, copy=False,
    )
    csr_t = sp.csr_matrix(
        (views["t_data"], views["t_indices"], views["t_indptr"]),
        shape=spec.shape_t, copy=False,
    )
    # The parent sorted indices before publishing; recording that here
    # stops scipy from attempting an in-place sort on read-only buffers.
    csr.has_sorted_indices = True
    csr_t.has_sorted_indices = True
    arrays = {
        "csr": csr,
        "csr_t": csr_t,
        "norms": views["norms"],
        "words": views["words"] if spec.has_words else None,
    }
    _ATTACH_CACHE[spec.manifest.name] = (segment, arrays)
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_SIZE:
        _, (old_segment, _) = _ATTACH_CACHE.popitem(last=False)
        old_segment.close()
    return arrays


def _scan_shm_task(task: tuple[_ScanSpec, int, int, str]) -> tuple[
    tuple[npt.NDArray[np.int64], ...], dict[str, Any]
]:
    """Pool task for the shared-memory data plane.

    Self-contained (no pool initializer), so one warm pool can serve
    scans with different parameters back to back.
    """
    spec, start, stop, kernel = task
    arrays = _attached_arrays(spec)
    local = Recorder(measure_memory=spec.measure_memory)
    with use_recorder(local):
        result = _scan_block(
            arrays["csr"],
            arrays["csr_t"],
            arrays["norms"],
            spec.k,
            spec.collect_subsets,
            start,
            stop,
            kernel=kernel,
            words=arrays["words"],
        )
    return result, local.export_fragment()


def _resolve_words(
    words: npt.NDArray[np.uint64] | Callable[[], npt.NDArray[np.uint64]] | None,
    csr: sp.csr_matrix,
) -> npt.NDArray[np.uint64]:
    """Materialise packed words for the bits kernel.

    Accepts an array, a zero-argument callable (the workspace passes its
    memoised ``bits`` artifact lazily so sparse-only plans never pack),
    or ``None`` (pack from the CSR block by block, never densifying the
    whole matrix).
    """
    if words is None:
        return pack_csr_rows(csr)
    if callable(words):
        return words()
    return words


def blocked_scan(
    csr: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int | None = None,
    collect_subsets: bool = False,
    block_rows: int | None = None,
    n_workers: int | None = 1,
    kernel: str = "auto",
    words: npt.NDArray[np.uint64] | Callable[[], npt.NDArray[np.uint64]] | None = None,
) -> "ScanResult":
    """One blocked pass over ``C = M·Mᵀ``, reduced to reusable pairs.

    The single entry point behind both the type-4/5 grouping criteria
    and the shadowed-role subset criterion: everything every detector
    needs from the co-occurrence product is collected in *one* pass, so
    the product is never recomputed per consumer (the workspace layer
    memoises the result; see :mod:`repro.core.workspace`).

    Per block the product is immediately reduced (matched pairs with
    their Hamming distances, plus directed subset pairs when requested)
    before the next block is formed, so peak memory stays bounded by the
    densest single block for every combination of collections.  Each
    block runs the kernel :func:`~repro.core.grouping.kernels.plan_kernels`
    chose for it; the per-kernel block counts are recorded as
    ``cooccurrence.kernel_blocks.<name>`` counters.  Blocks fan out over
    a process pool when ``n_workers > 1`` — preferring the ambient
    :class:`~repro.parallel.WorkerPool` and the shared-memory data plane,
    falling back to pickled ``initargs`` and ultimately the serial loop —
    and results plus grafted trace fragments are concatenated in block
    order, so the outcome is identical for every ``block_rows`` / worker
    count / kernel / data plane.

    Emits one ``cooccurrence.block`` span per block (under whatever span
    is currently open) and returns the number of blocks on the result;
    callers are expected to record it as the ``cooccurrence.blocks``
    counter on their own span.
    """
    validate_kernel(kernel)
    n_rows = csr.shape[0]
    if n_rows == 0:
        return ScanResult(k, _EMPTY, _EMPTY, _EMPTY, _EMPTY, _EMPTY, 0)
    effective_block = block_rows or n_rows
    bounds = [
        (start, min(start + effective_block, n_rows))
        for start in range(0, n_rows, effective_block)
    ]
    # M and Mᵀ are both kept in CSR so every block product is a
    # CSR @ CSR multiply (scipy would otherwise re-convert the lazy
    # transpose view once per block).
    csr_t = csr.T.tocsr()
    recorder = current_recorder()

    plan = plan_kernels(csr, csr_t, bounds, kernel)
    for name in ("sparse", "bits"):
        count = plan.count(name)
        if count:
            recorder.add(f"cooccurrence.kernel_blocks.{name}", count)
    packed = _resolve_words(words, csr) if "bits" in plan else None

    workers = resolve_workers(n_workers)
    if workers > 1 and len(bounds) > 1:
        pieces = _scan_parallel(
            csr, csr_t, norms, k, collect_subsets, bounds, plan, packed,
            workers, recorder,
        )
    else:
        pieces = [
            _scan_block(
                csr, csr_t, norms, k, collect_subsets, start, stop,
                kernel=block_kernel, words=packed,
            )
            for (start, stop), block_kernel in zip(bounds, plan)
        ]
    merged = [np.concatenate(column) for column in zip(*pieces)]
    return ScanResult(k, *merged, n_blocks=len(bounds))


def _scan_parallel(
    csr, csr_t, norms, k, collect_subsets, bounds, plan, packed,
    workers, recorder,
) -> list[tuple[npt.NDArray[np.int64], ...]]:
    """Fan blocks over workers: shm data plane first, pickled fallback.

    Publishes the scan's arrays into one shared-memory segment and maps
    manifest-only tasks over the ambient pool (creating an ephemeral one
    when none is installed).  When shared memory is unavailable the
    legacy ``initargs`` plane re-pickles the arrays into each worker —
    slower, never wrong.
    """
    try:
        handle = _publish_scan(csr, csr_t, norms, packed)
    except SharedMemoryUnavailable as error:
        recorder.add("shm.unavailable", 1)
        executor = ParallelExecutor(
            workers,
            initializer=_init_block_worker,
            initargs=(
                csr, csr_t, norms, k, recorder.measure_memory,
                collect_subsets, packed,
            ),
        )
        pieces = []
        tasks = [(start, stop, kern) for (start, stop), kern in zip(bounds, plan)]
        for index, (arrays, payload) in enumerate(
            executor.map(_scan_of_block, tasks)
        ):
            recorder.graft(payload, fragment=index)
            pieces.append(arrays)
        return pieces

    recorder.add("shm.segments_published", 1)
    recorder.add("shm.bytes_published", handle.nbytes)
    recorder.observe("shm.publish_bytes", handle.nbytes)
    pool = current_pool()
    ephemeral = pool is None
    if ephemeral:
        pool = WorkerPool(workers)
    else:
        pool.adopt_segment(handle)
    spec = _ScanSpec(
        manifest=handle.manifest,
        shape=csr.shape,
        shape_t=csr_t.shape,
        k=k,
        collect_subsets=collect_subsets,
        measure_memory=recorder.measure_memory,
        has_words=packed is not None,
    )
    tasks = [
        (spec, start, stop, kern)
        for (start, stop), kern in zip(bounds, plan)
    ]
    try:
        pieces = []
        for index, (arrays, payload) in enumerate(
            pool.map(_scan_shm_task, tasks)
        ):
            recorder.graft(payload, fragment=index)
            pieces.append(arrays)
        return pieces
    finally:
        # Unlink eagerly: on Linux existing worker mappings survive the
        # unlink, and the attach caches are bounded, so pages are freed
        # as soon as the last mapping closes.
        if ephemeral:
            handle.close()
            pool.close()
        else:
            pool.release_segment(handle)


def _publish_scan(csr, csr_t, norms, packed):
    """Publish one scan's arrays into a single shared-memory segment."""
    # Sort parent-side once so workers can mark the rebuilt matrices
    # sorted instead of scipy re-sorting read-only buffers in place.
    csr.sort_indices()
    csr_t.sort_indices()
    arrays = {
        "m_data": csr.data,
        "m_indices": csr.indices,
        "m_indptr": csr.indptr,
        "t_data": csr_t.data,
        "t_indices": csr_t.indices,
        "t_indptr": csr_t.indptr,
        "norms": norms,
    }
    if packed is not None:
        arrays["words"] = packed
    return publish(arrays)


class ScanResult:
    """The reusable output of one :func:`blocked_scan` pass.

    ``rows``/``cols``/``hamming`` hold the unordered matched pairs
    (``rows < cols``) at distance ``<= k``; ``sub_rows``/``sub_cols``
    the directed subset pairs (empty unless collected).  Because the
    distances are kept, :meth:`pairs_at` filters the same pass down to
    any threshold ``<= k`` without touching the product again.
    """

    __slots__ = (
        "k", "rows", "cols", "hamming", "sub_rows", "sub_cols", "n_blocks"
    )

    def __init__(self, k, rows, cols, hamming, sub_rows, sub_cols, n_blocks):
        self.k = k
        self.rows = rows
        self.cols = cols
        self.hamming = hamming
        self.sub_rows = sub_rows
        self.sub_cols = sub_cols
        self.n_blocks = n_blocks

    def pairs_at(
        self, k: int
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """Matched pairs at distance ``<= k`` (requires ``k <= self.k``)."""
        if self.k is None or k > self.k:
            raise ValueError(
                f"scan collected pairs at k={self.k}, cannot filter to k={k}"
            )
        if k == self.k:
            return self.rows, self.cols
        keep = self.hamming <= k
        return self.rows[keep], self.cols[keep]

    def nbytes(self) -> int:
        arrays = (
            self.rows, self.cols, self.hamming, self.sub_rows, self.sub_cols
        )
        return int(sum(a.nbytes for a in arrays))


@register_group_finder("cooccurrence")
class CooccurrenceGroupFinder(GroupFinder):
    """Exact, deterministic group finder via co-occurrence counts.

    Parameters
    ----------
    block_rows:
        Rows of ``M`` per product block.  ``None`` (the default) computes
        the whole product in a single block — the original monolithic
        behaviour; any value >= 1 bounds peak memory at the cost of one
        product per block.  Output is identical for every value.
    n_workers:
        Worker processes for the blocked product (``None`` = all cores).
        With one worker, or a single block, everything runs in-process.
        Output is identical for every worker count.
    kernel:
        Per-block kernel choice: ``sparse`` (CSR matmul), ``bits``
        (packed AND + popcount), or ``auto`` (cost-model dispatch, the
        default).  Output is identical for every kernel.
    """

    def __init__(
        self,
        block_rows: int | None = None,
        n_workers: int | None = 1,
        kernel: str = "auto",
    ) -> None:
        if block_rows is not None and block_rows < 1:
            raise ConfigurationError(
                f"block_rows must be >= 1, got {block_rows}"
            )
        self._block_rows = block_rows
        self._n_workers = resolve_workers(n_workers)
        self._kernel = validate_kernel(kernel)

    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        k = self._check_threshold(max_differences)
        csr = self._csr_of(matrix)
        n_rows = csr.shape[0]
        if n_rows == 0:
            return []

        recorder = current_recorder()
        with recorder.span("finder:cooccurrence", k=k) as span:
            span.add("cooccurrence.rows", int(n_rows))
            span.add("cooccurrence.input_nnz", int(csr.nnz))

            norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
            scan = blocked_scan(
                csr,
                norms,
                k=k,
                block_rows=self._block_rows,
                n_workers=self._n_workers,
                kernel=self._kernel,
            )
            span.add("cooccurrence.blocks", scan.n_blocks)

            components = DisjointSet(n_rows)
            for i, j in zip(scan.rows.tolist(), scan.cols.tolist()):
                components.union(i, j)
            self._union_non_overlapping(components, norms, k)
            groups = components.groups(min_size=2)
            span.add("cooccurrence.groups", len(groups))
        return groups

    def find_groups_in(
        self, view: Any, max_differences: int = 0
    ) -> list[list[int]]:
        """Group rows of a workspace view using its shared scan.

        Identical output to :meth:`find_groups` on the view's matrix,
        but candidate pairs come from the memoised
        :meth:`~repro.core.workspace.AxisWorkspace.matched_pairs`
        artifact (one blocked pass per axis, shared with every other
        consumer) instead of a private product.  On a cold workspace the
        pass runs here, under this finder's span, with this finder's
        ``block_rows`` / ``n_workers`` / ``kernel`` as hints.
        """
        k = self._check_threshold(max_differences)
        n_rows = view.n_rows
        if n_rows == 0:
            return []
        recorder = current_recorder()
        with recorder.span("finder:cooccurrence", k=k) as span:
            span.add("cooccurrence.rows", int(n_rows))
            # 0/1 entries: the stored-entry count is the norm total.
            span.add("cooccurrence.input_nnz", int(view.norms.sum()))
            rows, cols = view.matched_pairs(
                k,
                block_rows=self._block_rows,
                n_workers=self._n_workers,
                kernel=self._kernel,
            )
            components = DisjointSet(n_rows)
            for i, j in zip(rows.tolist(), cols.tolist()):
                components.union(i, j)
            self._union_non_overlapping(components, view.norms, k)
            groups = components.groups(min_size=2)
            span.add("cooccurrence.groups", len(groups))
        return groups

    def warm(self, view: Any, max_differences: int = 0) -> None:
        """Register this finder's scan need on the view (no pass yet)."""
        if max_differences < 0 or view.n_rows == 0:
            return
        view.request_scan(
            k=int(max_differences),
            block_rows=self._block_rows,
            n_workers=self._n_workers,
            kernel=self._kernel,
        )

    @staticmethod
    def _union_non_overlapping(
        components: DisjointSet, norms: np.ndarray, k: int
    ) -> None:
        """Handle pairs absent from the co-occurrence entries (zero overlap).

        Two non-overlapping roles are within distance ``k`` iff
        ``|R^i| + |R^j| <= k`` (for ``k = 0``: both empty).  Every such
        pair involves only roles with ``|R| <= k``; and if a pair
        qualifies, both members also qualify against the smallest-norm
        role, so chaining everything through that anchor yields exactly
        the right connected components without enumerating all pairs.
        """
        small = np.flatnonzero(norms <= k)
        if len(small) < 2:
            return
        anchor = int(small[np.argmin(norms[small])])
        anchor_norm = int(norms[anchor])
        for index in small.tolist():
            if index == anchor:
                continue
            if anchor_norm + int(norms[index]) <= k:
                components.union(anchor, index)
