"""The paper's custom co-occurrence algorithm (§III-C, "Our Algorithm").

Let ``M`` be RUAM (or RPAM) and ``C = M @ M.T`` the role co-occurrence
matrix, so ``C[i, j] = g(R^i, R^j)`` counts users shared by roles ``i``
and ``j`` and ``C[i, i] = |R^i|``.  Then:

* **Exact duplicates** — the paper's indicator function:
  ``I[i, j] = 1  iff  |R^i| = C[i, j] = |R^j|`` (two sets of equal size
  sharing that many elements are equal).
* **Similar roles** — from the inclusion-exclusion identity
  ``hamming(i, j) = |R^i| + |R^j| - 2 * C[i, j]``, roles are similar when
  that value is ``<= k``.

Both checks touch only the *stored* entries of the sparse product, which
is what makes the algorithm fast: for realistic RBAC data, most role pairs
share no users at all and never appear in ``C``.  Pairs with no overlap
are only relevant when ``|R^i| + |R^j| <= k`` (tiny roles), handled by a
separate linear pass.  The result is exact and fully deterministic.

Blocked kernel
--------------
``C`` is never materialised whole.  The product is computed one row
block at a time — ``C[start:stop] = M[start:stop] @ Mᵀ`` — and each
block is immediately reduced to its *matching pairs* ``(i, j)`` before
the next block is formed, so peak memory is bounded by the densest
single block (``O(block_rows · r)`` stored entries worst case) instead
of ``nnz(C)``.  Blocks are independent, which is what lets
``n_workers > 1`` fan them out across a process pool; the union-find
reduction is order-insensitive, so the groups are identical for every
``block_rows`` and worker count.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np
import numpy.typing as npt
import scipy.sparse as sp

from repro.core.grouping.base import GroupFinder, register_group_finder
from repro.exceptions import ConfigurationError
from repro.parallel import ParallelExecutor, resolve_workers
from repro.util import DisjointSet

#: Read-only per-worker state installed by :func:`_init_block_worker`
#: (shipped once per worker, not once per block).
_WORKER_STATE: dict[str, Any] = {}


def _init_block_worker(
    csr: sp.csr_matrix,
    csr_t: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int,
) -> None:
    _WORKER_STATE["csr"] = csr
    _WORKER_STATE["csr_t"] = csr_t
    _WORKER_STATE["norms"] = norms
    _WORKER_STATE["k"] = k


def _block_matching_pairs(
    csr: sp.csr_matrix,
    csr_t: sp.csr_matrix,
    norms: npt.NDArray[np.int64],
    k: int,
    start: int,
    stop: int,
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Matching role pairs ``(i, j)``, ``i < j``, found in one row block.

    Computes ``M[start:stop] @ Mᵀ`` and applies the duplicate/similarity
    criterion to its stored entries; the (small) matched-pair arrays are
    all that survives the block.
    """
    product = (csr[start:stop] @ csr_t).tocoo()
    rows = product.row.astype(np.int64) + start
    cols = product.col.astype(np.int64)
    shared = product.data

    # Only consider each unordered pair once.
    upper = rows < cols
    rows, cols, shared = rows[upper], cols[upper], shared[upper]

    if k == 0:
        # I[i, j] = 1 iff |R^i| = g^{ij} = |R^j|.
        mask = (shared == norms[rows]) & (shared == norms[cols])
    else:
        # hamming(i, j) = |R^i| + |R^j| - 2 g^{ij} <= k.
        mask = (norms[rows] + norms[cols] - 2 * shared) <= k
    return rows[mask], cols[mask]


def _pairs_of_block(bounds: tuple[int, int]) -> tuple[
    npt.NDArray[np.int64], npt.NDArray[np.int64]
]:
    """Process-pool task: block bounds in, matched pairs out."""
    return _block_matching_pairs(
        _WORKER_STATE["csr"],
        _WORKER_STATE["csr_t"],
        _WORKER_STATE["norms"],
        _WORKER_STATE["k"],
        *bounds,
    )


@register_group_finder("cooccurrence")
class CooccurrenceGroupFinder(GroupFinder):
    """Exact, deterministic group finder via sparse co-occurrence counts.

    Parameters
    ----------
    block_rows:
        Rows of ``M`` per product block.  ``None`` (the default) computes
        the whole product in a single block — the original monolithic
        behaviour; any value >= 1 bounds peak memory at the cost of one
        sparse product per block.  Output is identical for every value.
    n_workers:
        Worker processes for the blocked product (``None`` = all cores).
        With one worker, or a single block, everything runs in-process.
        Output is identical for every worker count.
    """

    def __init__(
        self, block_rows: int | None = None, n_workers: int | None = 1
    ) -> None:
        if block_rows is not None and block_rows < 1:
            raise ConfigurationError(
                f"block_rows must be >= 1, got {block_rows}"
            )
        self._block_rows = block_rows
        self._n_workers = resolve_workers(n_workers)

    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        k = self._check_threshold(max_differences)
        csr = self._csr_of(matrix)
        n_rows = csr.shape[0]
        if n_rows == 0:
            return []

        norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
        components = DisjointSet(n_rows)

        for rows, cols in self._matching_pairs(csr, norms, k):
            for i, j in zip(rows.tolist(), cols.tolist()):
                components.union(i, j)

        self._union_non_overlapping(components, norms, k)
        return components.groups(min_size=2)

    def _matching_pairs(
        self,
        csr: sp.csr_matrix,
        norms: npt.NDArray[np.int64],
        k: int,
    ) -> Iterable[tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]]:
        """Matched pairs per block, blocked/parallel as configured."""
        n_rows = csr.shape[0]
        block_rows = self._block_rows or n_rows
        bounds = [
            (start, min(start + block_rows, n_rows))
            for start in range(0, n_rows, block_rows)
        ]
        # M and Mᵀ are both kept in CSR so every block product is a
        # CSR @ CSR multiply (scipy would otherwise re-convert the lazy
        # transpose view once per block).
        csr_t = csr.T.tocsr()
        if self._n_workers > 1 and len(bounds) > 1:
            executor = ParallelExecutor(
                self._n_workers,
                initializer=_init_block_worker,
                initargs=(csr, csr_t, norms, k),
            )
            return executor.map(_pairs_of_block, bounds)
        # Serial: yield lazily so only one block product is alive at a
        # time — this is what bounds peak memory.
        return (
            _block_matching_pairs(csr, csr_t, norms, k, start, stop)
            for start, stop in bounds
        )

    @staticmethod
    def _union_non_overlapping(
        components: DisjointSet, norms: np.ndarray, k: int
    ) -> None:
        """Handle pairs absent from the sparse product (zero overlap).

        Two non-overlapping roles are within distance ``k`` iff
        ``|R^i| + |R^j| <= k`` (for ``k = 0``: both empty).  Every such
        pair involves only roles with ``|R| <= k``; and if a pair
        qualifies, both members also qualify against the smallest-norm
        role, so chaining everything through that anchor yields exactly
        the right connected components without enumerating all pairs.
        """
        small = np.flatnonzero(norms <= k)
        if len(small) < 2:
            return
        anchor = int(small[np.argmin(norms[small])])
        anchor_norm = int(norms[anchor])
        for index in small.tolist():
            if index == anchor:
                continue
            if anchor_norm + int(norms[index]) <= k:
                components.union(anchor, index)
