"""Approximate-clustering baseline: HNSW nearest-neighbour search (§III-C).

Mirrors the paper's use of the ``datasketch`` HNSW index: build an index
over all role vectors using Manhattan distance (equal to Hamming on 0/1
data), then query it once per role to collect the roles within the allowed
distance, finally chaining pairs into groups.

Because the index search is approximate, some group members may be missed;
the paper argues this is acceptable for a periodically-run cleanup where
results converge over repeated runs.  The trade-off the benchmarks show —
expensive index construction amortised by fast queries at scale — comes
directly from the index structure.
"""

from __future__ import annotations

from typing import Any

from repro.ann import HNSWIndex
from repro.core.grouping.base import GroupFinder, register_group_finder
from repro.util import DisjointSet

#: Float-comparison guard, as for the DBSCAN baseline.
EPSILON = 1e-6


@register_group_finder("hnsw")
class HnswGroupFinder(GroupFinder):
    """Group finder backed by the from-scratch HNSW index.

    Parameters
    ----------
    m:
        HNSW out-degree parameter.
    ef_construction:
        Beam width during index construction.
    ef_search:
        Beam width during the per-role radius queries; larger values raise
        recall at the cost of query time.
    seed:
        Level-sampling seed (fixes the index layout for reproducibility).
    """

    def __init__(
        self,
        m: int = 16,
        ef_construction: int = 64,
        ef_search: int = 64,
        seed: int | None = 0,
    ) -> None:
        self._m = m
        self._ef_construction = ef_construction
        self._ef_search = ef_search
        self._seed = seed

    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        k = self._check_threshold(max_differences)
        dense = self._dense_of(matrix)
        return self._group_dense(dense, k)

    def find_groups_in(
        self, view: Any, max_differences: int = 0
    ) -> list[list[int]]:
        """Index the view's shared dense artifact (no re-densify)."""
        k = self._check_threshold(max_differences)
        if view.n_rows == 0:
            return []
        return self._group_dense(view.dense, k)

    def warm(self, view: Any, max_differences: int = 0) -> None:
        """Materialise the dense artifact the index is built over."""
        if view.n_rows:
            view.dense

    def _group_dense(self, dense: Any, k: int) -> list[list[int]]:
        n_rows = dense.shape[0]
        if n_rows == 0:
            return []

        index = HNSWIndex(
            dim=dense.shape[1],
            metric="manhattan",
            m=self._m,
            ef_construction=self._ef_construction,
            seed=self._seed,
        )
        index.add_items(dense)

        components = DisjointSet(n_rows)
        radius = k + EPSILON
        for row_index in range(n_rows):
            hits = index.radius_search(
                dense[row_index], radius=radius, ef=self._ef_search
            )
            for neighbor, _distance in hits:
                if neighbor != row_index:
                    components.union(row_index, neighbor)
        return components.groups(min_size=2)
