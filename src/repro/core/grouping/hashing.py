"""Ablation group finder: exact duplicates via content hashing.

Not part of the paper's three approaches — included to quantify the design
choice behind the custom algorithm.  For ``max_differences = 0`` grouping
identical rows is a dictionary build over per-row content keys, which is
the theoretical lower bound for this sub-problem.  It cannot handle
``max_differences >= 1`` at all, which is precisely why the paper's
algorithm is built on co-occurrence counts instead.
"""

from __future__ import annotations

from typing import Any

from repro.bitmatrix import BitMatrix
from repro.core.grouping.base import GroupFinder, register_group_finder
from repro.exceptions import ConfigurationError


@register_group_finder("hash")
class HashGroupFinder(GroupFinder):
    """Exact-duplicate grouping by hashing packed rows (k = 0 only)."""

    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        self._check_hash_threshold(max_differences)
        import scipy.sparse as sp

        from repro.bitmatrix import equal_row_groups_sparse

        if sp.issparse(matrix) or getattr(matrix, "csr", None) is not None:
            # Sparse path never densifies — scales to the real dataset.
            return equal_row_groups_sparse(self._csr_of(matrix))
        bits_attr = getattr(matrix, "bits", None)
        if isinstance(bits_attr, BitMatrix):
            bits = bits_attr
        else:
            bits = BitMatrix(self._dense_of(matrix))
        return bits.equal_row_groups()

    def find_groups_in(
        self, view: Any, max_differences: int = 0
    ) -> list[list[int]]:
        """Serve duplicates from the view's shared content buckets."""
        self._check_hash_threshold(max_differences)
        if view.n_rows == 0:
            return []
        # duplicate_groups already returns fresh lists (memo-safe).
        return view.duplicate_groups

    def warm(self, view: Any, max_differences: int = 0) -> None:
        """Materialise the row-content buckets (k = 0 requests only)."""
        if max_differences == 0 and view.n_rows:
            view.duplicate_groups

    def _check_hash_threshold(self, max_differences: int) -> int:
        k = self._check_threshold(max_differences)
        if k != 0:
            raise ConfigurationError(
                "HashGroupFinder only supports max_differences=0; "
                "use 'cooccurrence', 'dbscan', or 'hnsw' for similarity"
            )
        return k
