"""Common interface and registry for role group finders."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, TYPE_CHECKING

import numpy.typing as npt
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.types import BoolMatrix, as_bool_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.matrices import AssignmentMatrix

#: Input accepted by every finder: a labelled assignment matrix, a dense
#: boolean array-like, or a scipy sparse matrix.
MatrixLike = "AssignmentMatrix | npt.ArrayLike | sp.spmatrix"


class GroupFinder(ABC):
    """Finds groups of identical or similar rows in a boolean matrix.

    Semantics
    ---------
    ``find_groups(matrix, max_differences=k)`` returns groups of row
    indices such that:

    * for ``k = 0`` every group is a maximal set of rows with identical
      content (an equivalence class);
    * for ``k >= 1`` every group is a connected component of the graph
      whose edges join rows at Hamming distance ``<= k``.

    Groups always have at least two members, members are sorted ascending,
    and groups are ordered by their smallest member.  Exact finders return
    these groups completely; the approximate finder may miss rows or whole
    groups (the trade-off the paper evaluates).
    """

    #: Registry key and display name, set by subclasses.
    name: str = ""

    @abstractmethod
    def find_groups(
        self, matrix: Any, max_differences: int = 0
    ) -> list[list[int]]:
        """Return groups of row indices (see class docstring)."""

    # ------------------------------------------------------------------
    # Workspace-backed entry points
    # ------------------------------------------------------------------
    def find_groups_in(
        self, view: Any, max_differences: int = 0
    ) -> list[list[int]]:
        """Find groups over a workspace view's shared artifacts.

        ``view`` is an :class:`repro.core.workspace.AxisWorkspace` (or
        its collapsed variant); implementations override this to consume
        memoised artifacts — packed rows, signatures, the shared
        co-occurrence scan — instead of re-deriving them from a raw
        matrix.  Results must be identical to
        ``find_groups(view.csr, max_differences)``, the fallback used
        here.  Same group-ordering contract as :meth:`find_groups`.
        """
        if view.n_rows == 0:
            return []
        return self.find_groups(view.csr, max_differences)

    def warm(self, view: Any, max_differences: int = 0) -> None:
        """Pre-build (or request) the artifacts a later
        :meth:`find_groups_in` call with the same threshold will read.

        Called by the engine's warm phase *before* any detection runs so
        that scan requests from every detector aggregate into one
        co-occurrence pass per axis, and so that parallel workers
        receive materialised artifacts.  Must not raise for thresholds
        the finder rejects — configuration errors keep surfacing at
        detection time.  The default warms nothing.
        """

    # ------------------------------------------------------------------
    # Input normalisation shared by implementations
    # ------------------------------------------------------------------
    @staticmethod
    def _dense_of(matrix: Any) -> BoolMatrix:
        """Coerce any accepted input into a dense boolean matrix."""
        dense_attr = getattr(matrix, "dense", None)
        if dense_attr is not None and getattr(matrix, "row_ids", None) is not None:
            return dense_attr  # AssignmentMatrix
        if sp.issparse(matrix):
            import numpy as np

            return np.asarray(matrix.todense()).astype(bool)
        return as_bool_matrix(matrix)

    @staticmethod
    def _csr_of(matrix: Any) -> sp.csr_matrix:
        """Coerce any accepted input into an int64 CSR matrix.

        The dtype is enforced on every path: a bool/int8 CSR would make
        ``csr @ csr.T`` in the co-occurrence finder saturate or overflow
        shared-user counts past 127 (numpy products keep the operand
        dtype), silently corrupting group detection.
        """
        import numpy as np

        from repro.bitmatrix import to_csr

        csr_attr = getattr(matrix, "csr", None)
        if csr_attr is not None and getattr(matrix, "row_ids", None) is not None:
            csr = csr_attr  # AssignmentMatrix (or a duck-typed wrapper)
        else:
            csr = to_csr(matrix)
        if csr.dtype != np.int64:
            csr = csr.astype(np.int64)
        return csr

    @staticmethod
    def _check_threshold(max_differences: int) -> int:
        if max_differences < 0:
            raise ConfigurationError(
                f"max_differences must be >= 0, got {max_differences}"
            )
        return int(max_differences)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: name -> factory registry, populated by the implementation modules.
GROUP_FINDERS: dict[str, Callable[..., GroupFinder]] = {}


def register_group_finder(
    name: str,
) -> Callable[[type[GroupFinder]], type[GroupFinder]]:
    """Class decorator adding a finder class to :data:`GROUP_FINDERS`."""

    def decorator(cls: type[GroupFinder]) -> type[GroupFinder]:
        cls.name = name
        GROUP_FINDERS[name] = cls
        return cls

    return decorator


def make_group_finder(name: str, **kwargs: Any) -> GroupFinder:
    """Instantiate a registered group finder by name.

    Known names: ``cooccurrence`` (the paper's custom algorithm),
    ``dbscan`` (exact clustering), ``hnsw`` (approximate clustering),
    ``hash`` (exact duplicates only).
    """
    try:
        factory = GROUP_FINDERS[name]
    except KeyError:
        known = ", ".join(sorted(GROUP_FINDERS))
        raise ConfigurationError(
            f"unknown group finder {name!r}; expected one of: {known}"
        ) from None
    return factory(**kwargs)
