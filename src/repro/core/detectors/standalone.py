"""Type 1 — standalone nodes (§III-A.1, §III-B).

A node is standalone when it has no edges at all:

* a **user** whose RUAM column sums to 0 (e.g. an off-boarded employee
  whose entry was never cleaned up);
* a **permission** whose RPAM column sums to 0 (e.g. a decommissioned
  asset);
* a **role** whose row sums to 0 in *both* RUAM and RPAM — the trickier
  case the paper calls out, since a role row exists in both matrices.
"""

from __future__ import annotations

import numpy as np

from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.entities import EntityKind
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Finding,
    InefficiencyType,
)


class StandaloneNodeDetector(Detector):
    """Finds users, permissions, and roles with no edges."""

    name = "standalone_nodes"

    def detect(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        severity = DEFAULT_SEVERITY[InefficiencyType.STANDALONE_NODE]

        for user_id in context.ruam.cols_with_sum(0):
            findings.append(
                Finding(
                    type=InefficiencyType.STANDALONE_NODE,
                    entity_kind=EntityKind.USER,
                    entity_ids=(user_id,),
                    severity=severity,
                    message=f"user {user_id!r} is not assigned to any role",
                )
            )

        for permission_id in context.rpam.cols_with_sum(0):
            findings.append(
                Finding(
                    type=InefficiencyType.STANDALONE_NODE,
                    entity_kind=EntityKind.PERMISSION,
                    entity_ids=(permission_id,),
                    severity=severity,
                    message=(
                        f"permission {permission_id!r} is not linked to any role"
                    ),
                )
            )

        # A standalone role has zero-sum rows in both matrices; the row
        # order is identical (state.role_ids()), so a vector AND suffices.
        both_empty = np.flatnonzero(
            (context.ruam.row_sums == 0) & (context.rpam.row_sums == 0)
        )
        for index in both_empty:
            role_id = context.ruam.row_id(int(index))
            findings.append(
                Finding(
                    type=InefficiencyType.STANDALONE_NODE,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=(role_id,),
                    severity=severity,
                    message=(
                        f"role {role_id!r} has neither users nor permissions"
                    ),
                )
            )

        return findings
