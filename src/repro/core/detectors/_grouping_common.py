"""Shared machinery for the group-based detectors (types 4 and 5).

Both detectors analyse one axis at a time (RUAM for users, RPAM for
permissions), restrict the analysis to roles with at least one edge on
that axis (empty roles are type-1/2 findings; grouping them by "shared
users" would be vacuous), run a pluggable group finder, and map matrix row
indices back to role ids.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.grouping import GroupFinder
from repro.core.matrices import AssignmentMatrix


def nonempty_submatrix(
    matrix: AssignmentMatrix,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Rows with at least one edge, plus their original indices."""
    keep = np.flatnonzero(matrix.row_sums > 0)
    return matrix.csr[keep], keep


def find_role_groups(
    matrix: AssignmentMatrix,
    finder: GroupFinder,
    max_differences: int,
    skip_empty_rows: bool = True,
) -> list[list[str]]:
    """Run ``finder`` over ``matrix`` and return groups of role ids.

    When ``skip_empty_rows`` is set (the default for detectors) the finder
    only sees roles that have at least one edge on this axis.
    """
    if skip_empty_rows:
        submatrix, original = nonempty_submatrix(matrix)
        groups = finder.find_groups(submatrix, max_differences)
        index_groups = [np.take(original, group).tolist() for group in groups]
    else:
        index_groups = finder.find_groups(matrix, max_differences)
    return matrix.groups_to_ids(index_groups)
