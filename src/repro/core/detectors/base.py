"""Detector interface and the shared analysis context.

The paper computes RUAM/RPAM and their row/column sums once and reuses
them across inefficiency types (§III-B).  :class:`AnalysisContext` is that
shared computation: detectors pull the matrices from it, and the first
access builds them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property

from repro.core.matrices import AssignmentMatrix
from repro.core.state import RbacState
from repro.core.taxonomy import Finding


class AnalysisContext:
    """An RBAC state plus its lazily-built assignment matrices."""

    def __init__(self, state: RbacState) -> None:
        self.state = state

    @cached_property
    def ruam(self) -> AssignmentMatrix:
        """Role-User Assignment Matrix (built on first access)."""
        return AssignmentMatrix.ruam(self.state)

    @cached_property
    def rpam(self) -> AssignmentMatrix:
        """Role-Permission Assignment Matrix (built on first access)."""
        return AssignmentMatrix.rpam(self.state)

    @cached_property
    def workspace(self):
        """Shared per-axis artifact workspace (built on first access).

        A cached property, so warmed artifacts travel with the context
        wherever it goes — including the copy (fork-inherited or pickled) shipped to parallel
        detection workers.  See :mod:`repro.core.workspace`.
        """
        from repro.core.workspace import AnalysisWorkspace

        return AnalysisWorkspace(self)


class Detector(ABC):
    """Detects one inefficiency type over an :class:`AnalysisContext`."""

    #: Stable identifier used in reports and the CLI.
    name: str = ""

    @abstractmethod
    def detect(self, context: AnalysisContext) -> list[Finding]:
        """Return all findings of this detector's type.

        Implementations must be read-only with respect to the state and
        deterministic: equal inputs yield equal findings in equal order.
        """

    def warm(self, context: AnalysisContext) -> None:
        """Pre-build (or request) the workspace artifacts detection reads.

        The engine calls this for every enabled detector *before* any
        ``detect`` runs, then flushes the aggregated scan requests — the
        two-phase protocol that lets duplicates, similar, and shadowed
        share a single co-occurrence pass per axis, and that materialises
        artifacts in the parent before contexts are shipped to parallel
        workers.  Must not raise on configurations ``detect`` would
        reject (errors keep surfacing at detection time).  The default
        warms nothing; detection must work identically on a cold
        workspace.
        """

    def partition(self) -> list["Detector"]:
        """Split this detector into independent work units.

        The engine's parallel path runs each unit in its own worker and
        concatenates their findings *in partition order*, so the contract
        is: ``sum(part.detect(ctx) for part in d.partition(), [])`` must
        equal ``d.detect(ctx)`` exactly.  The default is the detector
        itself (one unit); axis-wise detectors override this to expose
        one unit per axis.
        """
        return [self]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
