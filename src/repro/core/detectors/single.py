"""Type 3 — roles with a single user or a single permission (§III-A.3).

Likely — but not certainly — a sign of inefficiency: the paper notes a
CEO-only role is legitimate, which is why these findings carry the lowest
severity and, like everything else, are never auto-fixed.
"""

from __future__ import annotations

from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.entities import EntityKind
from repro.core.matrices import AssignmentMatrix
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Axis,
    Finding,
    InefficiencyType,
)


class SingleAssignmentDetector(Detector):
    """Finds roles whose row sum is exactly 1 in RUAM or RPAM."""

    name = "single_assignment_roles"

    def detect(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(
            self._scan_axis(context.ruam, Axis.USERS, "user")
        )
        findings.extend(
            self._scan_axis(context.rpam, Axis.PERMISSIONS, "permission")
        )
        return findings

    @staticmethod
    def _scan_axis(
        matrix: AssignmentMatrix, axis: Axis, noun: str
    ) -> list[Finding]:
        severity = DEFAULT_SEVERITY[InefficiencyType.SINGLE_ASSIGNMENT_ROLE]
        findings = []
        for role_id in matrix.rows_with_sum(1):
            findings.append(
                Finding(
                    type=InefficiencyType.SINGLE_ASSIGNMENT_ROLE,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=(role_id,),
                    severity=severity,
                    message=f"role {role_id!r} has exactly one {noun}",
                    axis=axis,
                )
            )
        return findings
