"""Detectors — one per taxonomy type (§III-A / §III-B).

Each detector consumes a shared :class:`~repro.core.detectors.base.AnalysisContext`
(the RBAC state plus lazily-built RUAM/RPAM) and emits
:class:`~repro.core.taxonomy.Finding` records.  Types 1-3 are linear scans
over matrix row/column sums; types 4-5 delegate to a pluggable
:class:`~repro.core.grouping.GroupFinder`.
"""

from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.detectors.standalone import StandaloneNodeDetector
from repro.core.detectors.disconnected import DisconnectedRoleDetector
from repro.core.detectors.single import SingleAssignmentDetector
from repro.core.detectors.duplicates import DuplicateRolesDetector
from repro.core.detectors.similar import SimilarRolesDetector
from repro.core.detectors.shadowed import ShadowedRoleDetector

__all__ = [
    "AnalysisContext",
    "Detector",
    "StandaloneNodeDetector",
    "DisconnectedRoleDetector",
    "SingleAssignmentDetector",
    "DuplicateRolesDetector",
    "SimilarRolesDetector",
    "ShadowedRoleDetector",
]
