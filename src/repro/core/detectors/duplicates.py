"""Type 4 — roles sharing exactly the same users or permissions (§III-A.4).

The paper's headline consolidation target: every group of n identical
roles can in principle be collapsed to one, removing n-1 roles.  The
detector runs a group finder with ``max_differences = 0`` on each axis.
"""

from __future__ import annotations

from repro.core.detectors._grouping_common import find_role_groups
from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.entities import EntityKind
from repro.core.grouping import GroupFinder, make_group_finder
from repro.core.matrices import AssignmentMatrix
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Axis,
    Finding,
    InefficiencyType,
    RoleGroup,
)
from repro.obs import current_recorder


class DuplicateRolesDetector(Detector):
    """Finds groups of roles with identical user or permission sets.

    Parameters
    ----------
    finder:
        Group finder name (``"cooccurrence"``, ``"dbscan"``, ``"hnsw"``,
        ``"hash"``) or a pre-built :class:`GroupFinder`.  Defaults to the
        paper's custom co-occurrence algorithm.
    axes:
        Which axes to analyse; both by default.
    """

    name = "duplicate_roles"

    def __init__(
        self,
        finder: str | GroupFinder = "cooccurrence",
        axes: tuple[Axis, ...] = (Axis.USERS, Axis.PERMISSIONS),
    ) -> None:
        self._finder = (
            finder if isinstance(finder, GroupFinder) else make_group_finder(finder)
        )
        self._axes = tuple(axes)

    def detect(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for axis in self._axes:
            matrix = context.ruam if axis is Axis.USERS else context.rpam
            findings.extend(self._detect_axis(matrix, axis))
        return findings

    def partition(self) -> list["DuplicateRolesDetector"]:
        """One independent work unit per analysed axis."""
        if len(self._axes) <= 1:
            return [self]
        return [
            DuplicateRolesDetector(finder=self._finder, axes=(axis,))
            for axis in self._axes
        ]

    def _detect_axis(
        self, matrix: AssignmentMatrix, axis: Axis
    ) -> list[Finding]:
        severity = DEFAULT_SEVERITY[InefficiencyType.DUPLICATE_ROLES]
        noun = axis.value  # "users" / "permissions"
        findings = []
        with current_recorder().span(
            f"axis:{axis.value}", detector=self.name
        ) as span:
            groups = find_role_groups(matrix, self._finder, 0)
            span.add("duplicates.groups", len(groups))
            span.add(
                "duplicates.roles_grouped", sum(len(g) for g in groups)
            )
        for role_ids in groups:
            group = RoleGroup(
                role_ids=tuple(role_ids), axis=axis, max_differences=0
            )
            shared = (
                matrix.csr[matrix.row_index(role_ids[0])].indices
            )
            findings.append(
                Finding(
                    type=InefficiencyType.DUPLICATE_ROLES,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=tuple(role_ids),
                    severity=severity,
                    message=(
                        f"{len(role_ids)} roles share the same "
                        f"{len(shared)} {noun}: {', '.join(role_ids[:5])}"
                        + ("…" if len(role_ids) > 5 else "")
                    ),
                    axis=axis,
                    group=group,
                    details={
                        "group_size": len(role_ids),
                        "shared_count": int(len(shared)),
                        "redundant_roles": group.redundant_count,
                    },
                )
            )
        return findings
