"""Type 4 — roles sharing exactly the same users or permissions (§III-A.4).

The paper's headline consolidation target: every group of n identical
roles can in principle be collapsed to one, removing n-1 roles.  The
detector runs a group finder with ``max_differences = 0`` on each axis.
"""

from __future__ import annotations

import numpy as np

from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.entities import EntityKind
from repro.core.grouping import GroupFinder, make_group_finder
from repro.core.matrices import AssignmentMatrix
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Axis,
    Finding,
    InefficiencyType,
    RoleGroup,
)
from repro.obs import current_recorder


class DuplicateRolesDetector(Detector):
    """Finds groups of roles with identical user or permission sets.

    Parameters
    ----------
    finder:
        Group finder name (``"cooccurrence"``, ``"dbscan"``, ``"hnsw"``,
        ``"hash"``) or a pre-built :class:`GroupFinder`.  Defaults to the
        paper's custom co-occurrence algorithm.
    axes:
        Which axes to analyse; both by default.
    """

    name = "duplicate_roles"

    def __init__(
        self,
        finder: str | GroupFinder = "cooccurrence",
        axes: tuple[Axis, ...] = (Axis.USERS, Axis.PERMISSIONS),
    ) -> None:
        self._finder = (
            finder if isinstance(finder, GroupFinder) else make_group_finder(finder)
        )
        self._axes = tuple(axes)

    def detect(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for axis in self._axes:
            matrix = context.ruam if axis is Axis.USERS else context.rpam
            findings.extend(
                self._detect_axis(matrix, context.workspace.axis(axis), axis)
            )
        return findings

    def warm(self, context: AnalysisContext) -> None:
        """Register the k = 0 scan need on every analysed axis."""
        for axis in self._axes:
            workspace = context.workspace.axis(axis)
            if workspace.n_rows:
                self._finder.warm(workspace, 0)

    def partition(self) -> list["DuplicateRolesDetector"]:
        """One independent work unit per analysed axis."""
        if len(self._axes) <= 1:
            return [self]
        return [
            DuplicateRolesDetector(finder=self._finder, axes=(axis,))
            for axis in self._axes
        ]

    def _detect_axis(
        self, matrix: AssignmentMatrix, workspace, axis: Axis
    ) -> list[Finding]:
        severity = DEFAULT_SEVERITY[InefficiencyType.DUPLICATE_ROLES]
        noun = axis.value  # "users" / "permissions"
        findings = []
        with current_recorder().span(
            f"axis:{axis.value}", detector=self.name
        ) as span:
            if workspace.n_rows:
                index_groups = self._finder.find_groups_in(workspace, 0)
            else:
                index_groups = []
            groups = matrix.groups_to_ids(
                [
                    np.take(workspace.original, group).tolist()
                    for group in index_groups
                ]
            )
            span.add("duplicates.groups", len(groups))
            span.add(
                "duplicates.roles_grouped", sum(len(g) for g in groups)
            )
        for index_group, role_ids in zip(index_groups, groups):
            group = RoleGroup(
                role_ids=tuple(role_ids), axis=axis, max_differences=0
            )
            # Every member of the group has the same row content; the
            # shared-element count is the first member's norm, read from
            # the workspace instead of re-slicing the CSR per group.
            shared_count = int(workspace.norms[index_group[0]])
            findings.append(
                Finding(
                    type=InefficiencyType.DUPLICATE_ROLES,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=tuple(role_ids),
                    severity=severity,
                    message=(
                        f"{len(role_ids)} roles share the same "
                        f"{shared_count} {noun}: {', '.join(role_ids[:5])}"
                        + ("…" if len(role_ids) > 5 else "")
                    ),
                    axis=axis,
                    group=group,
                    details={
                        "group_size": len(role_ids),
                        "shared_count": shared_count,
                        "redundant_roles": group.redundant_count,
                    },
                )
            )
        return findings
