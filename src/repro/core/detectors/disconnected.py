"""Type 2 — roles disconnected on one side (§III-A.2).

A role that has permissions but no users (paper example: R03) or users
but no permissions (R02).  Roles with neither are type 1 (standalone) and
are deliberately excluded here so the two detectors never double-report.
"""

from __future__ import annotations

import numpy as np

from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.entities import EntityKind
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Axis,
    Finding,
    InefficiencyType,
)


class DisconnectedRoleDetector(Detector):
    """Finds roles missing all users, or missing all permissions."""

    name = "disconnected_roles"

    def detect(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        severity = DEFAULT_SEVERITY[InefficiencyType.DISCONNECTED_ROLE]
        user_sums = context.ruam.row_sums
        permission_sums = context.rpam.row_sums

        no_users = np.flatnonzero((user_sums == 0) & (permission_sums > 0))
        for index in no_users:
            role_id = context.ruam.row_id(int(index))
            findings.append(
                Finding(
                    type=InefficiencyType.DISCONNECTED_ROLE,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=(role_id,),
                    severity=severity,
                    message=(
                        f"role {role_id!r} has no users "
                        f"(but {int(permission_sums[index])} permissions)"
                    ),
                    axis=Axis.USERS,
                    details={"n_permissions": int(permission_sums[index])},
                )
            )

        no_permissions = np.flatnonzero(
            (permission_sums == 0) & (user_sums > 0)
        )
        for index in no_permissions:
            role_id = context.rpam.row_id(int(index))
            findings.append(
                Finding(
                    type=InefficiencyType.DISCONNECTED_ROLE,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=(role_id,),
                    severity=severity,
                    message=(
                        f"role {role_id!r} has no permissions "
                        f"(but {int(user_sums[index])} users)"
                    ),
                    axis=Axis.PERMISSIONS,
                    details={"n_users": int(user_sums[index])},
                )
            )

        return findings
