"""Type 5 — roles sharing a similar set of users/permissions (§III-A.5).

"Similar" means the sets differ in at most ``max_differences`` elements
(Hamming distance between row vectors), a threshold chosen by the
administrator; the paper's real-data experiment uses 1 ("all but one").

By default exact duplicates are collapsed to a single representative
before similarity grouping, so the reported groups describe *distinct*
role definitions that are close — matching how the paper reports same-set
roles (type 4) and similar-set roles (type 5) as separate counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.entities import EntityKind
from repro.core.grouping import GroupFinder, make_group_finder
from repro.core.matrices import AssignmentMatrix
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Axis,
    Finding,
    InefficiencyType,
    RoleGroup,
)
from repro.exceptions import ConfigurationError
from repro.obs import current_recorder


class SimilarRolesDetector(Detector):
    """Finds groups of roles whose sets differ by at most k elements.

    Parameters
    ----------
    max_differences:
        The administrator threshold k (must be >= 1; use
        :class:`DuplicateRolesDetector` for k = 0).
    finder:
        Group finder name or instance; default is the paper's custom
        co-occurrence algorithm.
    axes:
        Which axes to analyse; both by default.
    collapse_duplicates:
        Collapse identical rows to one representative before grouping
        (default True, see module docstring).
    """

    name = "similar_roles"

    def __init__(
        self,
        max_differences: int = 1,
        finder: str | GroupFinder = "cooccurrence",
        axes: tuple[Axis, ...] = (Axis.USERS, Axis.PERMISSIONS),
        collapse_duplicates: bool = True,
    ) -> None:
        if max_differences < 1:
            raise ConfigurationError(
                "max_differences must be >= 1 for similarity detection; "
                "use DuplicateRolesDetector for exact duplicates"
            )
        self._max_differences = int(max_differences)
        self._finder = (
            finder if isinstance(finder, GroupFinder) else make_group_finder(finder)
        )
        self._axes = tuple(axes)
        self._collapse_duplicates = collapse_duplicates

    def detect(self, context: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for axis in self._axes:
            matrix = context.ruam if axis is Axis.USERS else context.rpam
            findings.extend(
                self._detect_axis(matrix, context.workspace.axis(axis), axis)
            )
        return findings

    def warm(self, context: AnalysisContext) -> None:
        """Register the finder's needs on the (collapsed) view per axis."""
        for axis in self._axes:
            workspace = context.workspace.axis(axis)
            if workspace.n_rows == 0:
                continue
            view = (
                workspace.collapsed()
                if self._collapse_duplicates
                else workspace
            )
            self._finder.warm(view, self._max_differences)

    def partition(self) -> list["SimilarRolesDetector"]:
        """One independent work unit per analysed axis."""
        if len(self._axes) <= 1:
            return [self]
        return [
            SimilarRolesDetector(
                max_differences=self._max_differences,
                finder=self._finder,
                axes=(axis,),
                collapse_duplicates=self._collapse_duplicates,
            )
            for axis in self._axes
        ]

    def _detect_axis(
        self, matrix: AssignmentMatrix, workspace, axis: Axis
    ) -> list[Finding]:
        with current_recorder().span(
            f"axis:{axis.value}", detector=self.name
        ) as span:
            if workspace.n_rows == 0:
                return []

            if self._collapse_duplicates:
                view = workspace.collapsed()
                class_sizes = view.class_sizes
                span.add(
                    "similar.collapsed_rows",
                    int(workspace.n_rows - view.n_rows),
                )
            else:
                view = workspace
                class_sizes = np.ones(workspace.n_rows, dtype=np.int64)
            to_original = view.original
            span.add("similar.rows_analysed", int(view.n_rows))

            groups = self._finder.find_groups_in(
                view, self._max_differences
            )
            span.add("similar.groups", len(groups))

        severity = DEFAULT_SEVERITY[InefficiencyType.SIMILAR_ROLES]
        noun = axis.value
        findings = []
        for group in groups:
            role_ids = [
                matrix.row_id(int(to_original[member])) for member in group
            ]
            role_group = RoleGroup(
                role_ids=tuple(role_ids),
                axis=axis,
                max_differences=self._max_differences,
            )
            represented = int(sum(class_sizes[member] for member in group))
            findings.append(
                Finding(
                    type=InefficiencyType.SIMILAR_ROLES,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=tuple(role_ids),
                    severity=severity,
                    message=(
                        f"{len(role_ids)} roles have {noun} differing by at "
                        f"most {self._max_differences}: "
                        + ", ".join(role_ids[:5])
                        + ("…" if len(role_ids) > 5 else "")
                    ),
                    axis=axis,
                    group=role_group,
                    details={
                        "group_size": len(role_ids),
                        "max_differences": self._max_differences,
                        "represented_roles": represented,
                    },
                )
            )
        return findings
