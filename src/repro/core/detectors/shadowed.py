"""Extension detector — shadowed (dominated) roles.

The paper leaves consolidation of single-assignment roles as future work
(§IV-B: "the approach for consolidating roles related to the previous
inefficiency still needs to be developed").  This detector implements
the provably-safe core of that consolidation:

A role ``r`` is *shadowed* by a role ``s`` when

* ``users(r) ⊆ users(s)``  and  ``permissions(r) ⊆ permissions(s)``.

Every user of ``r`` also holds ``s``, which already grants everything
``r`` grants — so removing ``r`` cannot change any user's effective
permissions.  This safely absorbs a large share of the single-permission
role bloat the paper reports (21,000 roles in the real dataset), beyond
what exact-duplicate merging covers.

Detection reuses the custom algorithm's machinery: with co-occurrence
matrices ``Cᵘ = Mᵘ·Mᵘᵀ`` and ``Cᵖ = Mᵖ·Mᵖᵀ``,

* ``users(r) ⊆ users(s)``        iff ``Cᵘ[r, s] = |r|ᵤ``
* ``permissions(r) ⊆ permissions(s)``  iff ``Cᵖ[r, s] = |r|ₚ``

so candidate pairs come straight from the stored entries of the two
sparse products — the same trick that makes the paper's algorithm fast.
Exact duplicates (mutual shadowing) are excluded: those are type 4 and
handled by the merge planner; roles with an empty side are excluded:
those are types 1-2.

This is an *extension*: it is not part of the paper's five-type taxonomy
and is disabled by default (enable via
``AnalysisConfig(enabled_types=ALL_TYPES + (InefficiencyType.SHADOWED_ROLE,))``
or ``AnalysisConfig.with_extensions()``).
"""

from __future__ import annotations

import numpy as np

from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.entities import EntityKind
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Finding,
    InefficiencyType,
)


class ShadowedRoleDetector(Detector):
    """Finds roles dominated on both axes by another role."""

    name = "shadowed_roles"

    def detect(self, context: AnalysisContext) -> list[Finding]:
        from repro.bitmatrix import cooccurrence

        ruam = context.ruam
        rpam = context.rpam
        user_norms = ruam.row_sums
        permission_norms = rpam.row_sums

        # Roles eligible to be shadowed or to shadow: both sides non-empty.
        eligible = (user_norms > 0) & (permission_norms > 0)
        if not eligible.any():
            return []

        user_cooc = cooccurrence(ruam.csr).tocoo()
        permission_subset_pairs = _subset_pairs(
            cooccurrence(rpam.csr).tocoo(), permission_norms
        )

        severity = DEFAULT_SEVERITY[InefficiencyType.SHADOWED_ROLE]
        findings: list[Finding] = []
        seen_shadowed: set[int] = set()

        # users(r) ⊆ users(s) candidates, scanned in deterministic order.
        rows = user_cooc.row
        cols = user_cooc.col
        shared = user_cooc.data
        user_subset = shared == user_norms[rows]
        order = np.lexsort((cols[user_subset], rows[user_subset]))
        candidate_rows = rows[user_subset][order]
        candidate_cols = cols[user_subset][order]

        for r, s in zip(candidate_rows.tolist(), candidate_cols.tolist()):
            if r == s or r in seen_shadowed:
                continue
            if not (eligible[r] and eligible[s]):
                continue
            if (r, s) not in permission_subset_pairs:
                continue
            # Exclude exact duplicates on both axes (type 4, mutual).
            if (
                user_norms[r] == user_norms[s]
                and permission_norms[r] == permission_norms[s]
            ):
                continue
            seen_shadowed.add(r)
            shadowed_id = ruam.row_id(r)
            shadowing_id = ruam.row_id(s)
            findings.append(
                Finding(
                    type=InefficiencyType.SHADOWED_ROLE,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=(shadowed_id,),
                    severity=severity,
                    message=(
                        f"role {shadowed_id!r} is shadowed by "
                        f"{shadowing_id!r}: every user and every permission "
                        "of the former is covered by the latter"
                    ),
                    details={
                        "shadowed_by": shadowing_id,
                        "n_users": int(user_norms[r]),
                        "n_permissions": int(permission_norms[r]),
                    },
                )
            )

        findings.sort(key=lambda f: f.entity_ids)
        return findings


def _subset_pairs(cooc, norms: np.ndarray) -> set[tuple[int, int]]:
    """(r, s) pairs with row r's set a subset of row s's set (r != s)."""
    rows = cooc.row
    cols = cooc.col
    shared = cooc.data
    mask = (shared == norms[rows]) & (rows != cols)
    return set(zip(rows[mask].tolist(), cols[mask].tolist()))
