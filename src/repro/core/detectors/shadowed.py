"""Extension detector — shadowed (dominated) roles.

The paper leaves consolidation of single-assignment roles as future work
(§IV-B: "the approach for consolidating roles related to the previous
inefficiency still needs to be developed").  This detector implements
the provably-safe core of that consolidation:

A role ``r`` is *shadowed* by a role ``s`` when

* ``users(r) ⊆ users(s)``  and  ``permissions(r) ⊆ permissions(s)``.

Every user of ``r`` also holds ``s``, which already grants everything
``r`` grants — so removing ``r`` cannot change any user's effective
permissions.  This safely absorbs a large share of the single-permission
role bloat the paper reports (21,000 roles in the real dataset), beyond
what exact-duplicate merging covers.

Detection reuses the custom algorithm's machinery: with co-occurrence
matrices ``Cᵘ = Mᵘ·Mᵘᵀ`` and ``Cᵖ = Mᵖ·Mᵖᵀ``,

* ``users(r) ⊆ users(s)``        iff ``Cᵘ[r, s] = |r|ᵤ``
* ``permissions(r) ⊆ permissions(s)``  iff ``Cᵖ[r, s] = |r|ₚ``

so candidate pairs come straight from the stored entries of the two
sparse products — the same trick that makes the paper's algorithm fast.
The pairs are read from the shared per-axis workspace
(:attr:`repro.core.workspace.AxisWorkspace.subset_pairs`), whose blocked
scan both bounds peak memory by ``block_rows`` and is shared with the
duplicate/similar detectors — one co-occurrence pass per axis serves all
three.  Exact duplicates (mutual shadowing) are excluded: those are
type 4 and handled by the merge planner; roles with an empty side are
excluded: those are types 1-2.

This is an *extension*: it is not part of the paper's five-type taxonomy
and is disabled by default (enable via
``AnalysisConfig(enabled_types=ALL_TYPES + (InefficiencyType.SHADOWED_ROLE,))``
or ``AnalysisConfig.with_extensions()``).
"""

from __future__ import annotations

from repro.core.detectors.base import AnalysisContext, Detector
from repro.core.entities import EntityKind
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Finding,
    InefficiencyType,
)


class ShadowedRoleDetector(Detector):
    """Finds roles dominated on both axes by another role."""

    name = "shadowed_roles"

    def warm(self, context: AnalysisContext) -> None:
        """Register the subset-pair scan need on both axes."""
        user_norms = context.ruam.row_sums
        permission_norms = context.rpam.row_sums
        if not ((user_norms > 0) & (permission_norms > 0)).any():
            return
        for axis in ("users", "permissions"):
            workspace = context.workspace.axis(axis)
            if workspace.n_rows:
                workspace.request_scan(subsets=True)

    def detect(self, context: AnalysisContext) -> list[Finding]:
        ruam = context.ruam
        rpam = context.rpam
        user_norms = ruam.row_sums
        permission_norms = rpam.row_sums

        # Roles eligible to be shadowed or to shadow: both sides non-empty.
        eligible = (user_norms > 0) & (permission_norms > 0)
        if not eligible.any():
            return []

        # Directed subset pairs per axis, from the shared blocked scan.
        # Empty rows never contribute stored co-occurrence entries, so
        # the workspace's nonempty-submatrix restriction (mapped back to
        # full-matrix indices) loses no candidates.
        candidate_rows, candidate_cols = context.workspace.axis(
            "users"
        ).subset_pairs
        permission_rows, permission_cols = context.workspace.axis(
            "permissions"
        ).subset_pairs
        permission_subset_pairs = set(
            zip(permission_rows.tolist(), permission_cols.tolist())
        )

        severity = DEFAULT_SEVERITY[InefficiencyType.SHADOWED_ROLE]
        findings: list[Finding] = []
        seen_shadowed: set[int] = set()

        # users(r) ⊆ users(s) candidates, scanned in deterministic
        # (lexicographic) order — the workspace artifact is pre-sorted.
        for r, s in zip(candidate_rows.tolist(), candidate_cols.tolist()):
            if r in seen_shadowed:
                continue
            if not (eligible[r] and eligible[s]):
                continue
            if (r, s) not in permission_subset_pairs:
                continue
            # Exclude exact duplicates on both axes (type 4, mutual).
            if (
                user_norms[r] == user_norms[s]
                and permission_norms[r] == permission_norms[s]
            ):
                continue
            seen_shadowed.add(r)
            shadowed_id = ruam.row_id(r)
            shadowing_id = ruam.row_id(s)
            findings.append(
                Finding(
                    type=InefficiencyType.SHADOWED_ROLE,
                    entity_kind=EntityKind.ROLE,
                    entity_ids=(shadowed_id,),
                    severity=severity,
                    message=(
                        f"role {shadowed_id!r} is shadowed by "
                        f"{shadowing_id!r}: every user and every permission "
                        "of the former is covered by the latter"
                    ),
                    details={
                        "shadowed_by": shadowing_id,
                        "n_users": int(user_norms[r]),
                        "n_permissions": int(permission_norms[r]),
                    },
                )
            )

        findings.sort(key=lambda f: f.entity_ids)
        return findings
