"""Dataset statistics: the shape of an RBAC deployment.

Aggregate descriptive statistics an auditor wants alongside the findings
report — degree distributions of the tripartite graph, matrix densities,
and concentration measures.  The paper motivates its work with exactly
these shapes (tens of thousands of roles, millions of potential entries,
strongly skewed usage), so the numbers here contextualise what the
detectors find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.matrices import AssignmentMatrix
from repro.core.state import RbacState


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of an integer degree distribution."""

    count: int
    total: int
    minimum: int
    median: float
    mean: float
    p90: float
    maximum: int
    zeros: int
    gini: float

    @classmethod
    def of(cls, values: np.ndarray) -> "DistributionSummary":
        if len(values) == 0:
            return cls(0, 0, 0, 0.0, 0.0, 0.0, 0, 0, 0.0)
        values = np.asarray(values, dtype=np.int64)
        return cls(
            count=int(len(values)),
            total=int(values.sum()),
            minimum=int(values.min()),
            median=float(np.median(values)),
            mean=float(values.mean()),
            p90=float(np.percentile(values, 90)),
            maximum=int(values.max()),
            zeros=int(np.count_nonzero(values == 0)),
            gini=_gini(values),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "median": self.median,
            "mean": round(self.mean, 3),
            "p90": self.p90,
            "max": self.maximum,
            "zeros": self.zeros,
            "gini": round(self.gini, 4),
        }


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative integer distribution.

    0 = perfectly even (every role the same size), 1 = maximally
    concentrated.  Real RBAC deployments skew high on user-per-role.
    """
    if len(values) == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(values.astype(np.float64))
    n = len(sorted_values)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(
        (2.0 * (ranks * sorted_values).sum() / (n * sorted_values.sum()))
        - (n + 1.0) / n
    )


@dataclass(frozen=True)
class DatasetStatistics:
    """Full statistics bundle for one RBAC state."""

    n_users: int
    n_roles: int
    n_permissions: int
    ruam_density: float
    rpam_density: float
    users_per_role: DistributionSummary
    permissions_per_role: DistributionSummary
    roles_per_user: DistributionSummary
    roles_per_permission: DistributionSummary
    memory_ratio_vs_full_adjacency: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "entities": {
                "users": self.n_users,
                "roles": self.n_roles,
                "permissions": self.n_permissions,
            },
            "density": {
                "ruam": round(self.ruam_density, 6),
                "rpam": round(self.rpam_density, 6),
            },
            "users_per_role": self.users_per_role.to_dict(),
            "permissions_per_role": self.permissions_per_role.to_dict(),
            "roles_per_user": self.roles_per_user.to_dict(),
            "roles_per_permission": self.roles_per_permission.to_dict(),
            "memory_ratio_vs_full_adjacency": round(
                self.memory_ratio_vs_full_adjacency, 6
            ),
        }

    def to_text(self) -> str:
        lines = [
            "dataset statistics",
            "==================",
            f"users={self.n_users} roles={self.n_roles} "
            f"permissions={self.n_permissions}",
            f"RUAM density {self.ruam_density:.5f}, "
            f"RPAM density {self.rpam_density:.5f}",
            f"storing RUAM+RPAM instead of the full adjacency matrix uses "
            f"{self.memory_ratio_vs_full_adjacency:.2%} of the space",
            "",
            f"{'distribution':<24}{'mean':>8}{'median':>8}{'p90':>8}"
            f"{'max':>8}{'zeros':>8}{'gini':>8}",
        ]
        for label, summary in (
            ("users / role", self.users_per_role),
            ("permissions / role", self.permissions_per_role),
            ("roles / user", self.roles_per_user),
            ("roles / permission", self.roles_per_permission),
        ):
            lines.append(
                f"{label:<24}{summary.mean:>8.2f}{summary.median:>8.1f}"
                f"{summary.p90:>8.1f}{summary.maximum:>8}{summary.zeros:>8}"
                f"{summary.gini:>8.3f}"
            )
        return "\n".join(lines)


def dataset_statistics(state: RbacState) -> DatasetStatistics:
    """Compute :class:`DatasetStatistics` for ``state``."""
    ruam = AssignmentMatrix.ruam(state)
    rpam = AssignmentMatrix.rpam(state)
    ruam_cells = max(1, ruam.n_rows * ruam.n_cols)
    rpam_cells = max(1, rpam.n_rows * rpam.n_cols)

    n_total = state.n_users + state.n_roles + state.n_permissions
    full_adjacency_cells = max(1, n_total * n_total)
    sub_matrix_cells = state.n_roles * (state.n_users + state.n_permissions)

    return DatasetStatistics(
        n_users=state.n_users,
        n_roles=state.n_roles,
        n_permissions=state.n_permissions,
        ruam_density=float(ruam.row_sums.sum()) / ruam_cells,
        rpam_density=float(rpam.row_sums.sum()) / rpam_cells,
        users_per_role=DistributionSummary.of(ruam.row_sums),
        permissions_per_role=DistributionSummary.of(rpam.row_sums),
        roles_per_user=DistributionSummary.of(ruam.col_sums),
        roles_per_permission=DistributionSummary.of(rpam.col_sums),
        memory_ratio_vs_full_adjacency=(
            sub_matrix_cells / full_adjacency_cells
        ),
    )
