"""The paper's taxonomy of RBAC data inefficiencies (§III-A).

Five types are defined; types that have a "users or permissions" flavour
carry an :class:`Axis` discriminating which side was analysed.  Detection
output is a list of :class:`Finding` records, each tying an inefficiency
type to the affected entities and a suggested (never auto-applied)
remediation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Sequence

from repro.core.entities import EntityKind


class InefficiencyType(str, Enum):
    """The five inefficiency groups of the paper's taxonomy."""

    #: Type 1 — node with no edges at all (user, permission, or role).
    STANDALONE_NODE = "standalone_node"
    #: Type 2 — role missing all users or all permissions (but not both).
    DISCONNECTED_ROLE = "disconnected_role"
    #: Type 3 — role with exactly one user or exactly one permission.
    SINGLE_ASSIGNMENT_ROLE = "single_assignment_role"
    #: Type 4 — group of roles with identical user/permission sets.
    DUPLICATE_ROLES = "duplicate_roles"
    #: Type 5 — group of roles whose sets differ by at most k elements.
    SIMILAR_ROLES = "similar_roles"
    #: Extension (not in the paper's taxonomy; implements its §IV-B
    #: future work): a role whose users AND permissions are both subsets
    #: of another role's — removable without changing anyone's access.
    SHADOWED_ROLE = "shadowed_role"


class Axis(str, Enum):
    """Which side of the tripartite graph a role-level finding concerns."""

    USERS = "users"
    PERMISSIONS = "permissions"

    @property
    def entity_kind(self) -> EntityKind:
        if self is Axis.USERS:
            return EntityKind.USER
        return EntityKind.PERMISSION


class Severity(str, Enum):
    """Coarse triage hint for administrators reviewing findings.

    The paper stresses that none of the inefficiencies may be fixed
    automatically; severity only orders the review queue.
    """

    INFO = "info"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK: Mapping[Severity, int] = {
    Severity.INFO: 0,
    Severity.LOW: 1,
    Severity.MEDIUM: 2,
    Severity.HIGH: 3,
}

#: Default severity per inefficiency type.  Duplicate roles rank highest:
#: they bloat every authorisation check and are the paper's headline
#: consolidation opportunity.
DEFAULT_SEVERITY: Mapping[InefficiencyType, Severity] = {
    InefficiencyType.STANDALONE_NODE: Severity.LOW,
    InefficiencyType.DISCONNECTED_ROLE: Severity.MEDIUM,
    InefficiencyType.SINGLE_ASSIGNMENT_ROLE: Severity.INFO,
    InefficiencyType.DUPLICATE_ROLES: Severity.HIGH,
    InefficiencyType.SIMILAR_ROLES: Severity.MEDIUM,
    InefficiencyType.SHADOWED_ROLE: Severity.MEDIUM,
}


@dataclass(frozen=True, slots=True)
class RoleGroup:
    """A set of roles sharing the same or similar users/permissions.

    ``max_differences`` is 0 for exact duplicates (type 4) and the
    administrator-chosen threshold k for similar roles (type 5).
    """

    role_ids: tuple[str, ...]
    axis: Axis
    max_differences: int = 0

    def __post_init__(self) -> None:
        if len(self.role_ids) < 2:
            raise ValueError("a role group needs at least two members")
        if self.max_differences < 0:
            raise ValueError("max_differences must be >= 0")
        object.__setattr__(self, "role_ids", tuple(self.role_ids))

    @property
    def size(self) -> int:
        return len(self.role_ids)

    @property
    def redundant_count(self) -> int:
        """Roles that could be removed if the group were consolidated.

        Keeping one representative per group removes ``size - 1`` roles —
        the quantity behind the paper's "~10% of all roles" estimate.
        """
        return self.size - 1


@dataclass(frozen=True, slots=True)
class Finding:
    """One detected inefficiency instance.

    ``entity_ids`` lists the affected entities: the single node for types
    1-3 or every member role for types 4-5.  ``details`` carries
    type-specific context (axis, thresholds, group structure).
    """

    type: InefficiencyType
    entity_kind: EntityKind
    entity_ids: tuple[str, ...]
    severity: Severity
    message: str
    axis: Axis | None = None
    group: RoleGroup | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.entity_ids:
            raise ValueError("a finding must reference at least one entity")
        object.__setattr__(self, "entity_ids", tuple(self.entity_ids))
        object.__setattr__(self, "details", dict(self.details))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        payload: dict[str, Any] = {
            "type": self.type.value,
            "entity_kind": self.entity_kind.value,
            "entity_ids": list(self.entity_ids),
            "severity": self.severity.value,
            "message": self.message,
            "details": dict(self.details),
        }
        if self.axis is not None:
            payload["axis"] = self.axis.value
        if self.group is not None:
            payload["group"] = {
                "role_ids": list(self.group.role_ids),
                "axis": self.group.axis.value,
                "max_differences": self.group.max_differences,
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from its :meth:`to_dict` payload.

        Round-trip inverse (``Finding.from_dict(f.to_dict()) == f``):
        lets reports cross process boundaries as JSON — the job plane's
        workers ship serialised reports back to the service, which needs
        real :class:`Finding` objects again for diffing and rendering.
        """
        group_payload = payload.get("group")
        group = (
            RoleGroup(
                role_ids=tuple(group_payload["role_ids"]),
                axis=Axis(group_payload["axis"]),
                max_differences=group_payload["max_differences"],
            )
            if group_payload is not None
            else None
        )
        axis_value = payload.get("axis")
        return cls(
            type=InefficiencyType(payload["type"]),
            entity_kind=EntityKind(payload["entity_kind"]),
            entity_ids=tuple(payload["entity_ids"]),
            severity=Severity(payload["severity"]),
            message=payload["message"],
            axis=Axis(axis_value) if axis_value is not None else None,
            group=group,
            details=dict(payload.get("details", {})),
        )


def sort_findings(findings: Sequence[Finding]) -> list[Finding]:
    """Order findings for review: highest severity first, then by type and
    first affected entity id (stable and deterministic)."""
    return sorted(
        findings,
        key=lambda f: (-f.severity.rank, f.type.value, f.entity_ids),
    )
