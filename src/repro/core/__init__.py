"""Core RBAC model, inefficiency taxonomy, detectors, and analysis engine."""

from repro.core.engine import ALL_TYPES, AnalysisConfig, AnalysisEngine, analyze
from repro.core.entities import EntityKind, Permission, Role, User
from repro.core.incremental import IncrementalAuditor
from repro.core.matrices import AssignmentMatrix
from repro.core.report import Report
from repro.core.reportdiff import ReportDiff, diff_reports
from repro.core.stats import DatasetStatistics, dataset_statistics
from repro.core.state import RbacState
from repro.core.taxonomy import (
    Axis,
    Finding,
    InefficiencyType,
    RoleGroup,
    Severity,
    sort_findings,
)

__all__ = [
    "ALL_TYPES",
    "AnalysisConfig",
    "AnalysisEngine",
    "analyze",
    "AssignmentMatrix",
    "Axis",
    "EntityKind",
    "Finding",
    "IncrementalAuditor",
    "InefficiencyType",
    "Permission",
    "Report",
    "ReportDiff",
    "diff_reports",
    "DatasetStatistics",
    "dataset_statistics",
    "RbacState",
    "Role",
    "RoleGroup",
    "Severity",
    "User",
    "sort_findings",
]
