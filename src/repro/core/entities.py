"""Entity value types: users, roles, permissions.

Entities are immutable records identified by an opaque string id.  All
relationship data (who is assigned to what) lives in
:class:`repro.core.state.RbacState`, not on the entities themselves, so an
entity can be shared between states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from types import MappingProxyType
from typing import Any, Mapping


class EntityKind(str, Enum):
    """The three node kinds of the RBAC tripartite graph."""

    USER = "user"
    ROLE = "role"
    PERMISSION = "permission"


def _frozen_attributes(attributes: Mapping[str, Any] | None) -> Mapping[str, Any]:
    return MappingProxyType(dict(attributes or {}))


@dataclass(frozen=True, slots=True)
class User:
    """A human or service identity.

    ``attributes`` holds free-form metadata (department, country, …) that
    the library carries through loads/saves but never interprets.
    """

    id: str
    name: str = ""
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _validate_id(self.id, EntityKind.USER)
        object.__setattr__(self, "attributes", _frozen_attributes(self.attributes))

    @property
    def kind(self) -> EntityKind:
        return EntityKind.USER


@dataclass(frozen=True, slots=True)
class Role:
    """A named bundle of permissions assignable to users."""

    id: str
    name: str = ""
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _validate_id(self.id, EntityKind.ROLE)
        object.__setattr__(self, "attributes", _frozen_attributes(self.attributes))

    @property
    def kind(self) -> EntityKind:
        return EntityKind.ROLE


@dataclass(frozen=True, slots=True)
class Permission:
    """An atomic entitlement (an action on a resource)."""

    id: str
    name: str = ""
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _validate_id(self.id, EntityKind.PERMISSION)
        object.__setattr__(self, "attributes", _frozen_attributes(self.attributes))

    @property
    def kind(self) -> EntityKind:
        return EntityKind.PERMISSION


Entity = User | Role | Permission


def _validate_id(identifier: str, kind: EntityKind) -> None:
    if not isinstance(identifier, str):
        raise TypeError(
            f"{kind.value} id must be a string, got {type(identifier).__name__}"
        )
    if not identifier:
        raise ValueError(f"{kind.value} id must be a non-empty string")
