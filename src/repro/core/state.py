"""The mutable RBAC state: entities plus assignment edges.

:class:`RbacState` is the central data structure of the library.  It holds
the three entity collections and the two edge sets of the tripartite graph
(user-role and role-permission assignments), maintains forward and reverse
adjacency indexes, and offers set-algebra queries used by detectors and
remediation.

Edges to unknown entities are rejected — the state is always internally
consistent, so downstream code never has to re-validate.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Iterator

from repro.core.entities import Entity, EntityKind, Permission, Role, User
from repro.exceptions import DuplicateEntityError, UnknownEntityError


class RbacState:
    """In-memory RBAC dataset (users, roles, permissions, assignments)."""

    def __init__(self) -> None:
        self._users: dict[str, User] = {}
        self._roles: dict[str, Role] = {}
        self._permissions: dict[str, Permission] = {}
        # Forward adjacency: role -> members / grants.
        self._role_users: dict[str, set[str]] = {}
        self._role_permissions: dict[str, set[str]] = {}
        # Reverse adjacency: user/permission -> roles.
        self._user_roles: dict[str, set[str]] = {}
        self._permission_roles: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        users: Iterable[str | User] = (),
        roles: Iterable[str | Role] = (),
        permissions: Iterable[str | Permission] = (),
        user_assignments: Iterable[tuple[str, str]] = (),
        permission_assignments: Iterable[tuple[str, str]] = (),
    ) -> "RbacState":
        """Build a state in one call.

        ``user_assignments`` are ``(role_id, user_id)`` pairs;
        ``permission_assignments`` are ``(role_id, permission_id)`` pairs.
        Plain strings are promoted to entities with empty metadata.
        """
        state = cls()
        for user in users:
            state.add_user(user if isinstance(user, User) else User(user))
        for role in roles:
            state.add_role(role if isinstance(role, Role) else Role(role))
        for permission in permissions:
            state.add_permission(
                permission
                if isinstance(permission, Permission)
                else Permission(permission)
            )
        for role_id, user_id in user_assignments:
            state.assign_user(role_id, user_id)
        for role_id, permission_id in permission_assignments:
            state.assign_permission(role_id, permission_id)
        return state

    # ------------------------------------------------------------------
    # Entity management
    # ------------------------------------------------------------------
    def add_user(self, user: User | str) -> User:
        entity = user if isinstance(user, User) else User(user)
        if entity.id in self._users:
            raise DuplicateEntityError("user", entity.id)
        self._users[entity.id] = entity
        self._user_roles[entity.id] = set()
        return entity

    def add_role(self, role: Role | str) -> Role:
        entity = role if isinstance(role, Role) else Role(role)
        if entity.id in self._roles:
            raise DuplicateEntityError("role", entity.id)
        self._roles[entity.id] = entity
        self._role_users[entity.id] = set()
        self._role_permissions[entity.id] = set()
        return entity

    def add_permission(self, permission: Permission | str) -> Permission:
        entity = (
            permission
            if isinstance(permission, Permission)
            else Permission(permission)
        )
        if entity.id in self._permissions:
            raise DuplicateEntityError("permission", entity.id)
        self._permissions[entity.id] = entity
        self._permission_roles[entity.id] = set()
        return entity

    def remove_user(self, user_id: str) -> None:
        """Remove a user and all of their role assignments."""
        self._require_user(user_id)
        for role_id in self._user_roles.pop(user_id):
            self._role_users[role_id].discard(user_id)
        del self._users[user_id]

    def remove_role(self, role_id: str) -> None:
        """Remove a role and all its edges (both directions)."""
        self._require_role(role_id)
        for user_id in self._role_users.pop(role_id):
            self._user_roles[user_id].discard(role_id)
        for permission_id in self._role_permissions.pop(role_id):
            self._permission_roles[permission_id].discard(role_id)
        del self._roles[role_id]

    def remove_permission(self, permission_id: str) -> None:
        """Remove a permission and all of its role assignments."""
        self._require_permission(permission_id)
        for role_id in self._permission_roles.pop(permission_id):
            self._role_permissions[role_id].discard(permission_id)
        del self._permissions[permission_id]

    # ------------------------------------------------------------------
    # Assignment management
    # ------------------------------------------------------------------
    def assign_user(self, role_id: str, user_id: str) -> None:
        """Add a role -> user edge (idempotent)."""
        self._require_role(role_id)
        self._require_user(user_id)
        self._role_users[role_id].add(user_id)
        self._user_roles[user_id].add(role_id)

    def assign_permission(self, role_id: str, permission_id: str) -> None:
        """Add a role -> permission edge (idempotent)."""
        self._require_role(role_id)
        self._require_permission(permission_id)
        self._role_permissions[role_id].add(permission_id)
        self._permission_roles[permission_id].add(role_id)

    def revoke_user(self, role_id: str, user_id: str) -> None:
        """Remove a role -> user edge (no-op if absent)."""
        self._require_role(role_id)
        self._require_user(user_id)
        self._role_users[role_id].discard(user_id)
        self._user_roles[user_id].discard(role_id)

    def revoke_permission(self, role_id: str, permission_id: str) -> None:
        """Remove a role -> permission edge (no-op if absent)."""
        self._require_role(role_id)
        self._require_permission(permission_id)
        self._role_permissions[role_id].discard(permission_id)
        self._permission_roles[permission_id].discard(role_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self._users)

    @property
    def n_roles(self) -> int:
        return len(self._roles)

    @property
    def n_permissions(self) -> int:
        return len(self._permissions)

    @property
    def n_user_assignments(self) -> int:
        return sum(len(members) for members in self._role_users.values())

    @property
    def n_permission_assignments(self) -> int:
        return sum(len(grants) for grants in self._role_permissions.values())

    def user_ids(self) -> list[str]:
        """User ids in insertion order (the column order of RUAM)."""
        return list(self._users)

    def role_ids(self) -> list[str]:
        """Role ids in insertion order (the row order of RUAM/RPAM)."""
        return list(self._roles)

    def permission_ids(self) -> list[str]:
        """Permission ids in insertion order (the column order of RPAM)."""
        return list(self._permissions)

    def get_user(self, user_id: str) -> User:
        self._require_user(user_id)
        return self._users[user_id]

    def get_role(self, role_id: str) -> Role:
        self._require_role(role_id)
        return self._roles[role_id]

    def get_permission(self, permission_id: str) -> Permission:
        self._require_permission(permission_id)
        return self._permissions[permission_id]

    def has_user(self, user_id: str) -> bool:
        return user_id in self._users

    def has_role(self, role_id: str) -> bool:
        return role_id in self._roles

    def has_permission(self, permission_id: str) -> bool:
        return permission_id in self._permissions

    def users_of_role(self, role_id: str) -> frozenset[str]:
        self._require_role(role_id)
        return frozenset(self._role_users[role_id])

    def permissions_of_role(self, role_id: str) -> frozenset[str]:
        self._require_role(role_id)
        return frozenset(self._role_permissions[role_id])

    def roles_of_user(self, user_id: str) -> frozenset[str]:
        self._require_user(user_id)
        return frozenset(self._user_roles[user_id])

    def roles_of_permission(self, permission_id: str) -> frozenset[str]:
        self._require_permission(permission_id)
        return frozenset(self._permission_roles[permission_id])

    def effective_permissions(self, user_id: str) -> frozenset[str]:
        """Union of permissions granted to ``user_id`` through any role.

        This is the quantity remediation must preserve: merging duplicate
        roles is safe exactly when no user's effective permission set
        changes.
        """
        self._require_user(user_id)
        granted: set[str] = set()
        for role_id in self._user_roles[user_id]:
            granted.update(self._role_permissions[role_id])
        return frozenset(granted)

    def effective_users(self, permission_id: str) -> frozenset[str]:
        """Every user who holds ``permission_id`` through any role.

        The audit-time converse of :meth:`effective_permissions` ("who
        can do X?").
        """
        self._require_permission(permission_id)
        holders: set[str] = set()
        for role_id in self._permission_roles[permission_id]:
            holders.update(self._role_users[role_id])
        return frozenset(holders)

    def effective_permission_map(self) -> dict[str, frozenset[str]]:
        """``effective_permissions`` for every user, in one pass."""
        return {
            user_id: self.effective_permissions(user_id)
            for user_id in self._users
        }

    # ------------------------------------------------------------------
    # Iteration / copying
    # ------------------------------------------------------------------
    def iter_entities(self) -> Iterator[Entity]:
        yield from self._users.values()
        yield from self._roles.values()
        yield from self._permissions.values()

    def copy(self) -> "RbacState":
        """Deep-enough copy: entities are shared (immutable), edges copied."""
        clone = RbacState()
        clone._users = dict(self._users)
        clone._roles = dict(self._roles)
        clone._permissions = dict(self._permissions)
        clone._role_users = {k: set(v) for k, v in self._role_users.items()}
        clone._role_permissions = {
            k: set(v) for k, v in self._role_permissions.items()
        }
        clone._user_roles = {k: set(v) for k, v in self._user_roles.items()}
        clone._permission_roles = {
            k: set(v) for k, v in self._permission_roles.items()
        }
        return clone

    def fingerprint(self) -> str:
        """Order-insensitive content digest of entities + assignments.

        Two states have the same fingerprint exactly when they contain
        the same users, roles, and permissions (ids, names, attributes)
        and the same assignment edges — regardless of the order anything
        was inserted.  Any content mutation (add/remove an entity,
        assign/revoke an edge, rename) changes the digest.

        This is the report-cache key of the analysis service
        (:mod:`repro.service`): a cached report is valid for exactly as
        long as the fingerprint it was computed under.

        Each item is hashed independently (SHA-256 over a tagged,
        delimiter-separated encoding) and the per-item digests are
        combined with addition modulo 2**256, so the result is
        independent of iteration order and computed in one O(items)
        pass with no sorting.
        """
        mask = (1 << 256) - 1
        total = 0

        def mix(tag: str, *parts: str) -> int:
            h = hashlib.sha256()
            h.update(tag.encode("utf-8"))
            for part in parts:
                h.update(b"\x1f")
                h.update(part.encode("utf-8"))
            return int.from_bytes(h.digest(), "big")

        for collection, tag in (
            (self._users, "user"),
            (self._roles, "role"),
            (self._permissions, "permission"),
        ):
            for entity in collection.values():
                attributes = (
                    json.dumps(
                        dict(entity.attributes), sort_keys=True, default=str
                    )
                    if entity.attributes
                    else ""
                )
                total = (
                    total + mix(tag, entity.id, entity.name, attributes)
                ) & mask
        for role_id, members in self._role_users.items():
            for user_id in members:
                total = (total + mix("edge:ru", role_id, user_id)) & mask
        for role_id, grants in self._role_permissions.items():
            for permission_id in grants:
                total = (
                    total + mix("edge:rp", role_id, permission_id)
                ) & mask
        return f"{total:064x}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RbacState):
            return NotImplemented
        return (
            self._users == other._users
            and self._roles == other._roles
            and self._permissions == other._permissions
            and self._role_users == other._role_users
            and self._role_permissions == other._role_permissions
        )

    def __repr__(self) -> str:
        return (
            f"RbacState(users={self.n_users}, roles={self.n_roles}, "
            f"permissions={self.n_permissions}, "
            f"user_edges={self.n_user_assignments}, "
            f"permission_edges={self.n_permission_assignments})"
        )

    # ------------------------------------------------------------------
    # Graph export
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export the tripartite graph as a ``networkx.Graph``.

        Node names are prefixed with their kind (``user:``, ``role:``,
        ``permission:``) to keep the three id namespaces disjoint; each
        node carries a ``kind`` attribute.
        """
        import networkx as nx

        graph = nx.Graph()
        for user_id in self._users:
            graph.add_node(f"user:{user_id}", kind=EntityKind.USER.value)
        for role_id in self._roles:
            graph.add_node(f"role:{role_id}", kind=EntityKind.ROLE.value)
        for permission_id in self._permissions:
            graph.add_node(
                f"permission:{permission_id}", kind=EntityKind.PERMISSION.value
            )
        for role_id, members in self._role_users.items():
            for user_id in members:
                graph.add_edge(f"role:{role_id}", f"user:{user_id}")
        for role_id, grants in self._role_permissions.items():
            for permission_id in grants:
                graph.add_edge(f"role:{role_id}", f"permission:{permission_id}")
        return graph

    # ------------------------------------------------------------------
    # Internal guards
    # ------------------------------------------------------------------
    def _require_user(self, user_id: str) -> None:
        if user_id not in self._users:
            raise UnknownEntityError("user", user_id)

    def _require_role(self, role_id: str) -> None:
        if role_id not in self._roles:
            raise UnknownEntityError("role", role_id)

    def _require_permission(self, permission_id: str) -> None:
        if permission_id not in self._permissions:
            raise UnknownEntityError("permission", permission_id)
