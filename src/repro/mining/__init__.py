"""Bottom-up role mining — the related-work baseline the paper rejects.

The paper positions itself against *role mining* (Vaidya, Atluri &
Warner, CCS 2006): instead of inventing a new role set from the
user-permission assignment (UPA), it *combines existing roles* without
granting anything new.  To make that contrast measurable, this package
implements the subset-enumeration miner the paper cites:

* :func:`~repro.mining.miner.mine_candidate_roles` — FastMiner-style
  candidate generation: one candidate per distinct user permission
  profile, plus all pairwise intersections, each with its user support;
* :func:`~repro.mining.miner.greedy_role_cover` — the classic greedy
  heuristic for the Role Minimisation Problem: pick candidates covering
  the most uncovered UPA cells until the matrix is covered (or a role
  budget runs out).

``examples/mining_vs_consolidation.py`` runs both approaches on the same
organisation: mining rebuilds access from scratch (new role definitions
an auditor has to re-certify), while the paper's consolidation keeps
every existing definition and just removes redundancy — the trade-off
§II describes.
"""

from repro.mining.miner import (
    MinedRole,
    greedy_role_cover,
    mine_candidate_roles,
    upa_from_state,
)

__all__ = [
    "MinedRole",
    "mine_candidate_roles",
    "greedy_role_cover",
    "upa_from_state",
]
