"""FastMiner-style candidate generation and greedy role cover.

Follows the structure of Vaidya et al.'s subset-enumeration miners:

1. **Initial candidates** — each user's complete permission profile
   (``InitialRoles``); identical profiles collapse into one candidate
   whose support is the number of users sharing it.
2. **Intersections** — FastMiner adds the pairwise intersections of the
   initial candidates; an intersection is the access shared by two user
   populations and is the natural shape of a business role.
3. **Support** — a candidate's users are everyone whose profile is a
   superset of the candidate's permission set.

The greedy cover then repeatedly picks the candidate covering the most
uncovered (user, permission) cells — the standard approximation for the
Role Minimisation Problem, which is NP-complete in general.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.state import RbacState
from repro.exceptions import ConfigurationError


def upa_from_state(state: RbacState) -> dict[str, frozenset[str]]:
    """The user-permission assignment: each user's *effective* profile.

    Mining deliberately ignores the existing role structure — that is
    what makes it "bottom-up" and what the paper's approach avoids.
    Users with no permissions are excluded (no cells to cover).
    """
    return {
        user_id: profile
        for user_id, profile in state.effective_permission_map().items()
        if profile
    }


@dataclass(frozen=True)
class MinedRole:
    """A candidate role produced by the miner."""

    permissions: frozenset[str]
    users: frozenset[str]

    @property
    def support(self) -> int:
        """Number of users whose profile covers this candidate."""
        return len(self.users)

    @property
    def n_cells(self) -> int:
        """UPA cells this role could cover (support × permission count)."""
        return len(self.users) * len(self.permissions)


def mine_candidate_roles(
    state: RbacState, max_candidates: int = 10_000
) -> list[MinedRole]:
    """FastMiner candidate generation over ``state``'s UPA.

    Returns candidates sorted by descending support, then descending
    permission-set size, then lexicographically (fully deterministic).
    Raises :class:`ConfigurationError` if the candidate set would exceed
    ``max_candidates`` (quadratic blow-up guard — the scalability issue
    the paper's related work §II points at).
    """
    upa = upa_from_state(state)
    distinct_profiles = sorted(
        {profile for profile in upa.values()},
        key=lambda p: (len(p), sorted(p)),
    )

    candidates: set[frozenset[str]] = set(distinct_profiles)
    for i, first in enumerate(distinct_profiles):
        for second in distinct_profiles[i + 1 :]:
            shared = first & second
            if shared:
                candidates.add(shared)
            if len(candidates) > max_candidates:
                raise ConfigurationError(
                    f"candidate explosion: more than {max_candidates} "
                    "candidates; raise max_candidates or reduce the input"
                )

    mined = []
    for permission_set in candidates:
        members = frozenset(
            user_id
            for user_id, profile in upa.items()
            if permission_set <= profile
        )
        mined.append(MinedRole(permissions=permission_set, users=members))
    mined.sort(
        key=lambda role: (
            -role.support,
            -len(role.permissions),
            sorted(role.permissions),
        )
    )
    return mined


@dataclass
class CoverResult:
    """Outcome of the greedy role cover."""

    selected: list[MinedRole]
    covered_cells: int
    total_cells: int

    @property
    def coverage(self) -> float:
        if self.total_cells == 0:
            return 1.0
        return self.covered_cells / self.total_cells

    @property
    def n_roles(self) -> int:
        return len(self.selected)


def greedy_role_cover(
    state: RbacState,
    max_roles: int | None = None,
    candidates: list[MinedRole] | None = None,
) -> CoverResult:
    """Greedy Role-Minimisation heuristic over mined candidates.

    Repeatedly selects the candidate covering the most currently
    uncovered UPA cells until everything is covered or ``max_roles``
    candidates were taken.  The selected candidates' (user, permission)
    rectangles exactly tile the coverage — no user is ever granted a
    permission outside their original profile, by construction of the
    candidates.
    """
    if max_roles is not None and max_roles < 0:
        raise ConfigurationError("max_roles must be >= 0")
    upa = upa_from_state(state)
    uncovered: set[tuple[str, str]] = {
        (user_id, permission_id)
        for user_id, profile in upa.items()
        for permission_id in profile
    }
    total_cells = len(uncovered)
    pool = list(
        candidates if candidates is not None else mine_candidate_roles(state)
    )

    selected: list[MinedRole] = []
    while uncovered and pool:
        if max_roles is not None and len(selected) >= max_roles:
            break
        best = None
        best_gain = 0
        for candidate in pool:
            gain = sum(
                1
                for user_id in candidate.users
                for permission_id in candidate.permissions
                if (user_id, permission_id) in uncovered
            )
            if gain > best_gain:
                best = candidate
                best_gain = gain
        if best is None:
            break
        selected.append(best)
        pool.remove(best)
        for user_id in best.users:
            for permission_id in best.permissions:
                uncovered.discard((user_id, permission_id))

    return CoverResult(
        selected=selected,
        covered_cells=total_cells - len(uncovered),
        total_cells=total_cells,
    )
