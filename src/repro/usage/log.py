"""Access-event logs and the synthetic log generator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.core.state import RbacState
from repro.exceptions import ConfigurationError


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One observed exercise of a permission by a user."""

    user_id: str
    permission_id: str
    timestamp: float = 0.0


class AccessLog:
    """An append-only collection of access events.

    The log is deliberately dumb — no schema coupling to any state — so
    real audit-trail exports can be poured in directly.  Validation
    against a state happens at analysis time.
    """

    def __init__(self, events: Iterable[AccessEvent] = ()) -> None:
        self._events: list[AccessEvent] = list(events)

    def record(
        self, user_id: str, permission_id: str, timestamp: float = 0.0
    ) -> None:
        """Append one event."""
        self._events.append(AccessEvent(user_id, permission_id, timestamp))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self._events)

    def window(self, start: float, end: float) -> "AccessLog":
        """Events with ``start <= timestamp < end``."""
        if end < start:
            raise ConfigurationError("window end precedes start")
        return AccessLog(
            e for e in self._events if start <= e.timestamp < end
        )

    def used_pairs(self) -> frozenset[tuple[str, str]]:
        """Distinct (user, permission) pairs observed."""
        return frozenset(
            (e.user_id, e.permission_id) for e in self._events
        )

    def users(self) -> frozenset[str]:
        return frozenset(e.user_id for e in self._events)

    def permissions(self) -> frozenset[str]:
        return frozenset(e.permission_id for e in self._events)

    def __repr__(self) -> str:
        return (
            f"AccessLog(events={len(self._events)}, "
            f"distinct_pairs={len(self.used_pairs())})"
        )


def save_access_log_csv(log: AccessLog, path) -> None:
    """Write a log as CSV (header ``user_id,permission_id,timestamp``)."""
    import csv
    from pathlib import Path

    with open(Path(path), "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(["user_id", "permission_id", "timestamp"])
        for event in log:
            writer.writerow(
                [event.user_id, event.permission_id, repr(event.timestamp)]
            )


def load_access_log_csv(path) -> AccessLog:
    """Read a log written by :func:`save_access_log_csv`.

    The timestamp column is optional (defaults to 0.0), so plain
    two-column exports load as well.
    """
    import csv
    from pathlib import Path

    from repro.exceptions import DataFormatError

    log = AccessLog()
    with open(Path(path), newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise DataFormatError(f"{path}: empty file") from None
        if len(header) not in (2, 3) or header[0] != "user_id":
            raise DataFormatError(
                f"{path}: expected header user_id,permission_id[,timestamp]"
            )
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) not in (2, 3):
                raise DataFormatError(
                    f"{path}:{line_number}: expected 2 or 3 columns"
                )
            timestamp = 0.0
            if len(row) == 3 and row[2]:
                try:
                    timestamp = float(row[2])
                except ValueError:
                    raise DataFormatError(
                        f"{path}:{line_number}: bad timestamp {row[2]!r}"
                    ) from None
            log.record(row[0], row[1], timestamp=timestamp)
    return log


def generate_access_log(
    state: RbacState,
    exercise_rate: float = 0.7,
    events_per_pair: int = 3,
    duration: float = 86_400.0,
    seed: int = 0,
) -> AccessLog:
    """Synthesise a plausible access log for ``state``.

    For each (user, effective permission) pair, the pair is *exercised*
    with probability ``exercise_rate``; exercised pairs produce
    ``1..events_per_pair`` events at uniform-random timestamps in
    ``[0, duration)``.  The remaining pairs are never used — the dormant
    access the analysis is meant to surface.

    Deterministic per seed (used by tests and the example).
    """
    if not 0.0 <= exercise_rate <= 1.0:
        raise ConfigurationError("exercise_rate must be in [0, 1]")
    if events_per_pair < 1:
        raise ConfigurationError("events_per_pair must be >= 1")
    rng = np.random.default_rng(seed)
    log = AccessLog()
    for user_id in state.user_ids():
        for permission_id in sorted(state.effective_permissions(user_id)):
            if rng.random() >= exercise_rate:
                continue
            for _ in range(int(rng.integers(1, events_per_pair + 1))):
                log.record(
                    user_id,
                    permission_id,
                    timestamp=float(rng.random() * duration),
                )
    return log
