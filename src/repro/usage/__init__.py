"""Usage-log analysis — least-privilege signals from access logs.

The paper's related work (D'Antoni et al., OOPSLA 2024) argues that
refining existing policies from *access logs* beats regenerating them:
an assignment nobody exercises is a candidate for removal.  This package
brings that signal into the Role Diet toolbox:

* :class:`~repro.usage.log.AccessLog` — a multiset of
  ``(user, permission, timestamp)`` access events, with windowing;
* :func:`~repro.usage.log.generate_access_log` — synthetic log
  generator driven by an :class:`~repro.core.state.RbacState` (real
  traces are proprietary, like the paper's dataset — same substitution
  rationale as ``repro.datagen``);
* :class:`~repro.usage.analysis.UsageAnalysis` — dormant memberships,
  dormant roles, and never-exercised grants, each with the
  benefit-of-the-doubt attribution documented on the class.

Like every detector in this library, the output is advisory: revoking
access on log evidence alone can break rare-but-legitimate workflows
(break-glass accounts, yearly jobs), so the findings feed the same
review-then-apply pipeline.
"""

from repro.usage.log import (
    AccessEvent,
    AccessLog,
    generate_access_log,
    load_access_log_csv,
    save_access_log_csv,
)
from repro.usage.analysis import UsageAnalysis, UsageSummary

__all__ = [
    "AccessEvent",
    "AccessLog",
    "generate_access_log",
    "load_access_log_csv",
    "save_access_log_csv",
    "UsageAnalysis",
    "UsageSummary",
]
