"""Dormancy analysis: what the log says nobody needs.

Attribution is inherently ambiguous — a user holding a permission
through two roles exercises *both* memberships when using it.  The
analysis therefore gives every assignment the benefit of the doubt:

* a **membership** (role, user) is *exercised* when the user used at
  least one permission the role grants — even if another role also
  grants it;
* a **grant** (role, permission) is *exercised* when at least one member
  of the role used the permission — through any path;
* a **role is dormant** when none of its memberships is exercised.

This errs maximally toward keeping access, so everything flagged is
genuinely unused under every possible attribution — the only defensible
bar for least-privilege suggestions from logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.state import RbacState
from repro.usage.log import AccessLog


@dataclass(frozen=True)
class UsageSummary:
    """Counts for one analysis run (shapes the text report)."""

    n_events: int
    n_memberships: int
    n_dormant_memberships: int
    n_grants: int
    n_unused_grants: int
    n_roles: int
    n_dormant_roles: int
    n_unknown_event_pairs: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "events": self.n_events,
            "memberships": self.n_memberships,
            "dormant_memberships": self.n_dormant_memberships,
            "grants": self.n_grants,
            "unused_grants": self.n_unused_grants,
            "roles": self.n_roles,
            "dormant_roles": self.n_dormant_roles,
            "unknown_event_pairs": self.n_unknown_event_pairs,
        }


@dataclass
class UsageAnalysis:
    """Joins a state with a log and answers dormancy queries.

    All queries are computed eagerly at construction (one pass over the
    log plus one over the assignments) and returned in deterministic
    order.
    """

    state: RbacState
    log: AccessLog
    dormant_memberships: list[tuple[str, str]] = field(init=False)
    unused_grants: list[tuple[str, str]] = field(init=False)
    dormant_roles: list[str] = field(init=False)
    unknown_event_pairs: list[tuple[str, str]] = field(init=False)

    def __post_init__(self) -> None:
        used = self.log.used_pairs()

        # Events that reference access the state does not actually grant
        # (stale log, or — worse — access outside RBAC).  Surfaced, not
        # silently dropped.
        unknown = []
        for user_id, permission_id in sorted(used):
            if (
                not self.state.has_user(user_id)
                or not self.state.has_permission(permission_id)
                or permission_id
                not in self.state.effective_permissions(user_id)
            ):
                unknown.append((user_id, permission_id))
        self.unknown_event_pairs = unknown

        used_by_user: dict[str, set[str]] = {}
        for user_id, permission_id in used:
            used_by_user.setdefault(user_id, set()).add(permission_id)

        dormant_memberships: list[tuple[str, str]] = []
        unused_grants: list[tuple[str, str]] = []
        dormant_roles: list[str] = []
        for role_id in self.state.role_ids():
            grants = self.state.permissions_of_role(role_id)
            members = self.state.users_of_role(role_id)

            role_exercised = False
            for user_id in sorted(members):
                if used_by_user.get(user_id, set()) & grants:
                    role_exercised = True
                else:
                    dormant_memberships.append((role_id, user_id))
            if members and not role_exercised:
                dormant_roles.append(role_id)

            used_by_members: set[str] = set()
            for user_id in members:
                used_by_members.update(used_by_user.get(user_id, set()))
            for permission_id in sorted(grants):
                if permission_id not in used_by_members:
                    unused_grants.append((role_id, permission_id))

        self.dormant_memberships = dormant_memberships
        self.unused_grants = unused_grants
        self.dormant_roles = dormant_roles

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> UsageSummary:
        return UsageSummary(
            n_events=len(self.log),
            n_memberships=self.state.n_user_assignments,
            n_dormant_memberships=len(self.dormant_memberships),
            n_grants=self.state.n_permission_assignments,
            n_unused_grants=len(self.unused_grants),
            n_roles=self.state.n_roles,
            n_dormant_roles=len(self.dormant_roles),
            n_unknown_event_pairs=len(self.unknown_event_pairs),
        )

    def to_text(self, max_listed: int = 10) -> str:
        summary = self.summary()
        lines = [
            "usage analysis",
            "==============",
            f"events observed:        {summary.n_events}",
            f"dormant memberships:    {summary.n_dormant_memberships} "
            f"of {summary.n_memberships}",
            f"never-exercised grants: {summary.n_unused_grants} "
            f"of {summary.n_grants}",
            f"dormant roles:          {summary.n_dormant_roles} "
            f"of {summary.n_roles}",
        ]
        if summary.n_unknown_event_pairs:
            lines.append(
                f"!! events outside granted access: "
                f"{summary.n_unknown_event_pairs} distinct pairs"
            )
        if self.dormant_roles:
            shown = self.dormant_roles[:max_listed]
            lines.append("")
            lines.append("dormant roles (no member used any grant):")
            for role_id in shown:
                lines.append(f"  - {role_id}")
            if len(self.dormant_roles) > max_listed:
                lines.append(
                    f"  … and {len(self.dormant_roles) - max_listed} more"
                )
        return "\n".join(lines)
