"""Legacy setuptools shim.

``pip install -e .`` uses PEP 660 editable wheels, which require the
``wheel`` package; fully-offline environments without it can fall back
to ``python setup.py develop`` (or simply add ``src/`` to a ``.pth``
file).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
